#include "logicopt/techmap.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/logicsim.hpp"

namespace lps::logicopt {

Netlist subject_graph(const Netlist& net) { return strash(decompose_nand2(net)); }

namespace {

struct TreeInfo {
  std::vector<bool> is_root;  // per subject node
};

TreeInfo partition_trees(const Netlist& s) {
  TreeInfo t;
  t.is_root.assign(s.size(), false);
  for (NodeId o : s.outputs()) t.is_root[o] = true;
  for (NodeId d : s.dffs())
    for (NodeId f : s.node(d).fanins) t.is_root[f] = true;
  for (NodeId n = 0; n < s.size(); ++n) {
    if (s.is_dead(n)) continue;
    const Node& nd = s.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    if (nd.fanouts.size() != 1) t.is_root[n] = true;
  }
  return t;
}

// Try to overlay `p` rooted at subject node n.  Internal pattern nodes may
// only cover subject nodes private to this tree position (single fanout and
// not a tree root).  Appends matched leaves in pattern order.
bool match(const Netlist& s, const TreeInfo& t, const Pattern& p, NodeId n,
           bool at_root, std::vector<NodeId>& leaves) {
  if (p.kind == Pattern::Kind::Leaf) {
    leaves.push_back(n);
    return true;
  }
  const Node& nd = s.node(n);
  if (!at_root && (t.is_root[n] || is_source(nd.type) ||
                   nd.type == GateType::Dff))
    return false;
  if (p.kind == Pattern::Kind::Inv) {
    if (nd.type != GateType::Not) return false;
    return match(s, t, p.kids[0], nd.fanins[0], false, leaves);
  }
  // Nand.
  if (nd.type != GateType::Nand || nd.fanins.size() != 2) return false;
  std::size_t mark = leaves.size();
  if (match(s, t, p.kids[0], nd.fanins[0], false, leaves) &&
      match(s, t, p.kids[1], nd.fanins[1], false, leaves))
    return true;
  leaves.resize(mark);
  if (match(s, t, p.kids[0], nd.fanins[1], false, leaves) &&
      match(s, t, p.kids[1], nd.fanins[0], false, leaves))
    return true;
  leaves.resize(mark);
  return false;
}

}  // namespace

MapResult tech_map(const Netlist& net, const Library& lib,
                   MapObjective objective,
                   std::span<const double> subject_activity) {
  Netlist s = subject_graph(net);
  TreeInfo trees = partition_trees(s);

  std::vector<double> activity;
  if (!subject_activity.empty()) {
    if (subject_activity.size() != s.size())
      throw std::invalid_argument("tech_map: activity size mismatch");
    activity.assign(subject_activity.begin(), subject_activity.end());
  } else {
    auto st = sim::measure_activity(s, 64, 1);
    activity = st.transition_prob;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Choice {
    const LibGate* cell = nullptr;
    std::vector<NodeId> leaves;
  };
  std::vector<double> best_cost(s.size(), kInf);
  std::vector<double> best_arrival(s.size(), 0.0);
  std::vector<Choice> best_choice(s.size());

  auto order = s.topo_order();
  for (NodeId n : order) {
    const Node& nd = s.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) {
      best_cost[n] = 0.0;
      best_arrival[n] = 0.0;
      continue;
    }
    for (const auto& g : lib.gates) {
      std::vector<NodeId> leaves;
      if (!match(s, trees, g.pattern, n, true, leaves)) continue;
      double cost = 0.0;
      double arr = 0.0;
      for (NodeId leaf : leaves) {
        cost += best_cost[leaf];
        arr = std::max(arr, best_arrival[leaf]);
        if (objective == MapObjective::Power)
          cost += activity[leaf] * g.cin_ff;
      }
      arr += g.delay;
      switch (objective) {
        case MapObjective::Area:
          cost += g.area;
          break;
        case MapObjective::Delay:
          cost = 0.0;
          for (NodeId leaf : leaves) cost += 1e-4 * best_cost[leaf];
          cost += arr;  // lexicographic-ish: arrival dominates
          break;
        case MapObjective::Power:
          cost += activity[n] * g.cout_ff;
          break;
      }
      if (cost < best_cost[n]) {
        best_cost[n] = cost;
        best_arrival[n] = arr;
        best_choice[n] = Choice{&g, std::move(leaves)};
      }
    }
    if (best_cost[n] == kInf)
      throw std::logic_error("tech_map: node has no matching cell");
  }

  // Collect instances by backtracking from tree roots.
  MapResult r;
  std::vector<bool> emitted(s.size(), false);
  std::vector<NodeId> work;
  for (NodeId n = 0; n < s.size(); ++n) {
    if (s.is_dead(n)) continue;
    const Node& nd = s.node(n);
    if (trees.is_root[n] && !is_source(nd.type) && nd.type != GateType::Dff)
      work.push_back(n);
  }
  while (!work.empty()) {
    NodeId n = work.back();
    work.pop_back();
    if (emitted[n]) continue;
    const Node& nd = s.node(n);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    emitted[n] = true;
    const Choice& c = best_choice[n];
    r.instances.push_back({c.cell, n, c.leaves});
    for (NodeId leaf : c.leaves) work.push_back(leaf);
  }

  // Metrics for the final cover (all three, regardless of objective).
  std::vector<double> arrival(s.size(), 0.0);
  // Instances are discovered roots-first; evaluate in subject topo order.
  std::vector<const MappedInstance*> by_root(s.size(), nullptr);
  for (const auto& inst : r.instances) by_root[inst.root] = &inst;
  for (NodeId n : order) {
    const MappedInstance* inst = by_root[n];
    if (!inst) continue;
    double a = 0.0;
    for (NodeId leaf : inst->leaves) a = std::max(a, arrival[leaf]);
    arrival[n] = a + inst->cell->delay;
    r.total_area += inst->cell->area;
    r.switched_cap_ff += activity[n] * inst->cell->cout_ff;
    for (NodeId leaf : inst->leaves)
      r.switched_cap_ff += activity[leaf] * inst->cell->cin_ff;
    r.cell_histogram[inst->cell->name] += 1;
    r.arrival = std::max(r.arrival, arrival[n]);
  }
  return r;
}

Netlist MapResult::to_netlist(const Netlist& subject) const {
  Netlist dst(subject.name() + "_mapped");
  std::vector<NodeId> map(subject.size(), kNoNode);
  for (NodeId n : subject.topo_order()) {
    const Node& nd = subject.node(n);
    if (nd.type == GateType::Input)
      map[n] = dst.add_input(nd.name);
    else if (nd.type == GateType::Const0)
      map[n] = dst.add_const(false);
    else if (nd.type == GateType::Const1)
      map[n] = dst.add_const(true);
    else if (nd.type == GateType::Dff) {
      map[n] = dst.add_dff(dst.add_const(false), nd.init_value, nd.name);
      if (nd.fanins.size() == 2)
        dst.set_dff_enable(map[n], dst.add_const(false));
    }
  }
  // Expand instances in subject topological order.
  std::vector<const MappedInstance*> by_root(subject.size(), nullptr);
  for (const auto& inst : instances) by_root[inst.root] = &inst;

  // Recursive pattern expansion.
  auto expand = [&](auto&& self, const Pattern& p, const MappedInstance& inst,
                    std::size_t& leaf_idx) -> NodeId {
    switch (p.kind) {
      case Pattern::Kind::Leaf: {
        NodeId leaf = inst.leaves[leaf_idx++];
        NodeId mapped = map[leaf];
        if (mapped == kNoNode)
          throw std::logic_error("to_netlist: leaf not yet mapped");
        return mapped;
      }
      case Pattern::Kind::Inv: {
        NodeId a = self(self, p.kids[0], inst, leaf_idx);
        return dst.add_not(a);
      }
      case Pattern::Kind::Nand: {
        NodeId a = self(self, p.kids[0], inst, leaf_idx);
        NodeId b = self(self, p.kids[1], inst, leaf_idx);
        return dst.add_nand(a, b);
      }
    }
    return kNoNode;
  };

  for (NodeId n : subject.topo_order()) {
    const MappedInstance* inst = by_root[n];
    if (!inst) continue;
    std::size_t leaf_idx = 0;
    map[n] = expand(expand, inst->cell->pattern, *inst, leaf_idx);
  }
  for (NodeId d : subject.dffs())
    for (std::size_t k = 0; k < subject.node(d).fanins.size(); ++k)
      dst.replace_fanin(map[d], k, map[subject.node(d).fanins[k]]);
  const auto& outs = subject.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i)
    dst.add_output(map[outs[i]], subject.output_names()[i]);
  dst.sweep();
  return dst;
}

}  // namespace lps::logicopt
