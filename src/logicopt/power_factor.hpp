// power_factor.hpp — netlist bridges for (power-aware) factoring.
//
// Connects the SOP algebra of sop/ to the gate-network world so the E6
// experiment can compare literal-count factoring against activity-weighted
// factoring (§III-A.3, SYCLOP [35]) on equal terms: both forms are built
// into netlists and measured with the same simulator and power model.

#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sop/factoring.hpp"

namespace lps::logicopt {

/// Build a flat two-level netlist (AND-OR) computing the SOP.
Netlist sop_to_netlist(const sop::Sop& f, const std::string& name = "sop");

/// Build a netlist computing the factored expression over `num_vars` inputs.
Netlist expr_to_netlist(const sop::Expr& e, unsigned num_vars,
                        const std::string& name = "factored");

struct FactoringComparison {
  Netlist flat;          // two-level
  Netlist literal_form;  // classic factoring
  Netlist power_form;    // activity-weighted factoring
  unsigned lits_flat = 0;
  unsigned lits_literal = 0;
  unsigned lits_power = 0;
};

/// Run both factorings of `f` given per-input one-probabilities (weights are
/// the input toggle rates 2p(1-p)).
FactoringComparison compare_factorings(const sop::Sop& f,
                                       const std::vector<double>& one_prob);

}  // namespace lps::logicopt
