// power_factor.hpp — netlist bridges for (power-aware) factoring.
//
// Connects the SOP algebra of sop/ to the gate-network world so the E6
// experiment can compare literal-count factoring against activity-weighted
// factoring (§III-A.3, SYCLOP [35]) on equal terms: both forms are built
// into netlists and measured with the same simulator and power model.

#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sop/factoring.hpp"

namespace lps::logicopt {

/// Build a flat two-level netlist (AND-OR) computing the SOP.
Netlist sop_to_netlist(const sop::Sop& f, const std::string& name = "sop");

/// Build a netlist computing the factored expression over `num_vars` inputs.
Netlist expr_to_netlist(const sop::Expr& e, unsigned num_vars,
                        const std::string& name = "factored");

struct FactoringComparison {
  Netlist flat;          // two-level
  Netlist literal_form;  // classic factoring
  Netlist power_form;    // activity-weighted factoring
  unsigned lits_flat = 0;
  unsigned lits_literal = 0;
  unsigned lits_power = 0;
  /// Measured ZeroDelay switching power of each built form under the given
  /// input probabilities (rescore=true only).  The heuristic weights above
  /// describe the *inputs* of the pre-factoring cover; internal nodes a
  /// factoring creates carry activities the weights never saw — the same
  /// stale-cost-oracle family as resynth's bug — so the decision of record
  /// is made on these measured numbers, not the weighted literal counts.
  double power_flat_w = 0.0;
  double power_literal_w = 0.0;
  double power_power_w = 0.0;
  /// Which built form measured cheapest: "literal" or "power" ("" when
  /// rescore=false).  May disagree with the weighted-literal ranking.
  std::string measured_winner;
};

/// Run both factorings of `f` given per-input one-probabilities (weights are
/// the input toggle rates 2p(1-p)).  With `rescore` (default) each built
/// form is additionally measured with the ZeroDelay simulator under
/// `one_prob`-biased stimulus, and `measured_winner` records the verdict.
/// The three measurements are independent and run concurrently on up to
/// `workers` threads (0 = the LPS_OPT_WORKERS default) — the scores and the
/// verdict are bit-identical at any worker count.
FactoringComparison compare_factorings(const sop::Sop& f,
                                       const std::vector<double>& one_prob,
                                       bool rescore = true, int workers = 0);

}  // namespace lps::logicopt
