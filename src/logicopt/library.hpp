// library.hpp — technology library for graph-covering technology mapping.
//
// §III-B: "A typical library will contain hundreds of gates with different
// transistor sizes.  Modern technology mapping methods use a graph covering
// formulation, originally presented in [20] (DAGON)."  Library cells are
// described as pattern trees over the NAND2/INV subject-graph basis, with
// area, pin-to-pin delay, input capacitance and output drive parameters.
// standard_library() provides a representative static-CMOS cell set with
// several drive strengths per function (the power/area/delay tradeoff the
// mapper explores).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

/// Pattern tree over the subject basis.  Leaf matches any signal.
struct Pattern {
  enum class Kind { Leaf, Inv, Nand };
  Kind kind = Kind::Leaf;
  std::vector<Pattern> kids;

  static Pattern leaf();
  static Pattern inv(Pattern a);
  static Pattern nand(Pattern a, Pattern b);
  int num_leaves() const;
};

struct LibGate {
  std::string name;
  Pattern pattern;
  double area = 1.0;      // relative cell area
  double delay = 1.0;     // pin-to-output delay
  double cin_ff = 10.0;   // capacitance presented per input pin
  double cout_ff = 8.0;   // parasitic output capacitance of the cell
};

struct Library {
  std::vector<LibGate> gates;
};

/// A representative 1995-era standard-cell set: INV/NAND/NOR/AND/OR in 2-3
/// input flavours, AOI21/OAI21, XOR2/XNOR2 composites, and x1/x2/x4 drive
/// variants of the workhorses.
Library standard_library();

/// Decompose an arbitrary netlist into the NAND2/INV subject basis
/// (functionally equivalent; Dffs and PIs/POs preserved).
Netlist decompose_nand2(const Netlist& net);

}  // namespace lps::logicopt
