#include "logicopt/bdd_synth.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bdd/bdd_netlist.hpp"
#include "core/env.hpp"
#include "core/metrics.hpp"
#include "power/incremental.hpp"
#include "sim/logicsim.hpp"

namespace lps::logicopt {

namespace {

struct Cone {
  NodeId root = kNoNode;
  std::vector<NodeId> gates;    // cone logic in topological (post) order
  std::vector<NodeId> sources;  // PIs/Dff outputs in DFS first-visit order
};

// Extraction roots: primary outputs and register D/EN fanins, deduplicated,
// logic gates only (sources and registers have nothing to extract).
std::vector<NodeId> cone_roots(const Netlist& net) {
  std::vector<NodeId> roots;
  std::vector<bool> seen(net.size(), false);
  auto push = [&](NodeId n) {
    if (seen[n]) return;
    seen[n] = true;
    const Node& nd = net.node(n);
    if (nd.dead || is_source(nd.type) || nd.type == GateType::Dff) return;
    roots.push_back(n);
  };
  for (NodeId o : net.outputs()) push(o);
  for (NodeId d : net.dffs())
    for (NodeId f : net.node(d).fanins) push(f);
  return roots;
}

// Fanin-first DFS from the root.  Sources land in first-visit order — the
// same interleaving heuristic bdd_netlist.cpp uses globally, which keeps
// arithmetic cones linear — and gates land in postorder, which is a valid
// evaluation order for the cone.  Constants are neither: they lower to the
// terminal directly.
Cone extract_cone(const Netlist& net, NodeId root) {
  Cone c;
  c.root = root;
  std::vector<bool> seen(net.size(), false);
  auto rec = [&](auto&& self, NodeId n) -> void {
    if (seen[n]) return;
    seen[n] = true;
    const Node& nd = net.node(n);
    if (nd.type == GateType::Input || nd.type == GateType::Dff) {
      c.sources.push_back(n);
      return;
    }
    for (NodeId f : nd.fanins) self(self, f);
    if (!is_source(nd.type)) c.gates.push_back(n);
  };
  rec(rec, root);
  return c;
}

// Build the cone's function bottom-up in a fresh manager and return the
// rooted function of the cone root.  Every per-gate function is ref()'d as
// soon as it exists (the auto-GC contract of bdd.hpp); once the root is
// known the scaffolding is deref'd and collected, so sifting and the
// peak-live watermark see only the root cone.
bdd::Ref build_cone(bdd::Manager& m, const Netlist& net, const Cone& c,
                    const std::unordered_map<NodeId, unsigned>& var_of) {
  std::unordered_map<NodeId, bdd::Ref> fn;
  fn.reserve(c.gates.size() + c.sources.size());
  for (const auto& [n, v] : var_of) fn.emplace(n, m.ref(m.var(v)));
  auto in = [&](NodeId g) -> bdd::Ref {
    const Node& nd = net.node(g);
    if (nd.type == GateType::Const0) return bdd::kFalse;
    if (nd.type == GateType::Const1) return bdd::kTrue;
    return fn.at(g);
  };
  for (NodeId id : c.gates) {
    const Node& nd = net.node(id);
    bdd::Ref r = bdd::kFalse;
    switch (nd.type) {
      case GateType::Buf:
        r = in(nd.fanins[0]);
        break;
      case GateType::Not:
        r = m.lnot(in(nd.fanins[0]));
        break;
      case GateType::And:
      case GateType::Nand: {
        r = bdd::kTrue;
        for (NodeId f : nd.fanins) r = m.land(r, in(f));
        if (nd.type == GateType::Nand) r = m.lnot(r);
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        for (NodeId f : nd.fanins) r = m.lor(r, in(f));
        if (nd.type == GateType::Nor) r = m.lnot(r);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        for (NodeId f : nd.fanins) r = m.lxor(r, in(f));
        if (nd.type == GateType::Xnor) r = m.lnot(r);
        break;
      }
      case GateType::Mux:
        r = m.ite(in(nd.fanins[0]), in(nd.fanins[2]), in(nd.fanins[1]));
        break;
      default:
        break;  // sources and Dffs never appear in c.gates
    }
    fn[id] = m.ref(r);
  }
  bdd::Ref root_fn = fn.at(c.root);
  for (const auto& [n, r] : fn)
    if (n != c.root) m.deref(r);
  m.gc();
  return root_fn;
}

}  // namespace

BddSynthResult synthesize_bdd_cones(Netlist& net, const BddSynthOptions& opt) {
  core::metrics::ScopedTimer timer("logicopt.bdd_synth", /*trace=*/true);
  BddSynthResult res;
  res.gates_before = net.num_gates();
  const unsigned cap =
      opt.max_inputs != 0
          ? opt.max_inputs
          : static_cast<unsigned>(
                core::env_long_or("LPS_BDD_SYNTH_MAX_INPUTS", 2, 30, 18));
  const bool do_sift = opt.sift < 0
                           ? core::env_bool_or("LPS_BDD_SYNTH_SIFT", true)
                           : opt.sift != 0;

  // Private deterministic oracle: ZeroDelay statistics are bit-identical
  // across sim engines, lane widths and thread counts, so the kept-cone
  // sequence depends only on (netlist, options).
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  power::IncrementalAnalyzer inc(net, ao);
  res.power_before_w = inc.analysis().report.breakdown.total_w();
  double cur_w = res.power_before_w;

  for (NodeId root : cone_roots(net)) {
    if (net.is_dead(root)) continue;  // swept behind an earlier kept cone
    ++res.cones_examined;
    core::metrics::count("logicopt.bdd_synth.cones");
    Cone c = extract_cone(net, root);
    if (c.sources.size() > cap) {
      ++res.cones_capped;
      core::metrics::count("logicopt.bdd_synth.capped");
      continue;
    }

    bdd::Config cfg = bdd::default_config();
    cfg.node_limit = opt.node_limit;
    cfg.auto_gc = true;
    bdd::Manager m(static_cast<unsigned>(c.sources.size()), cfg);
    std::unordered_map<NodeId, unsigned> var_of;
    for (unsigned v = 0; v < c.sources.size(); ++v)
      var_of.emplace(c.sources[v], v);
    bdd::Ref f;
    try {
      f = build_cone(m, net, c, var_of);
      if (do_sift && !c.sources.empty()) {
        // Weight each variable by its measured switching activity (from
        // the *current* circuit — the oracle re-scores after every kept
        // cone, so there is no stale-activity bias).  The floor keeps
        // plain node count as the tiebreaker for toggle-free inputs.
        const auto& tog = inc.analysis().toggles_per_cycle;
        std::vector<double> w(c.sources.size(), 1.0);
        for (unsigned v = 0; v < c.sources.size(); ++v)
          w[v] = 1e-3 +
                 (c.sources[v] < tog.size() ? tog[c.sources[v]] : 0.0);
        bdd::Manager::SiftOptions so;
        so.weights = w;
        so.growth_limit = opt.sift_growth;
        m.sift(so);  // rooted f keeps its identity and function
      }
    } catch (const bdd::NodeLimitExceeded&) {
      ++res.cones_limited;
      core::metrics::count("logicopt.bdd_synth.limited");
      continue;
    }
    res.peak_live_nodes = std::max(res.peak_live_nodes, m.peak_live_nodes());

    // Variable → netlist driver for the MUX selectors.
    std::vector<NodeId> var_node(c.sources.begin(), c.sources.end());

    // Candidate epoch: splice the MUX network in place of the root, score
    // the dirty cone, prove the outputs, keep only a strict power win.
    const std::uint64_t digest0 = inc.outputs_digest();
    sim::SimTrace ref;
    if (opt.verify_frames != 0)
      ref = sim::functional_trace(net, opt.verify_frames, opt.verify_seed);
    net.begin_undo();
    double after_w = 0.0;
    try {
      NodeId nr = bdd::synthesize_bdd(net, m, f, var_node);
      net.substitute(root, nr);
      net.sweep();
      after_w = inc.score_candidate(net.touched_nodes());
    } catch (...) {
      // score_candidate's strong exception safety already restored the
      // oracle; restoring the circuit is on us before the stage sees it.
      net.rollback_undo();
      throw;
    }
    bool sound = inc.outputs_digest() == digest0;
    if (sound && opt.verify_frames != 0)
      sound = sim::functional_trace(net, opt.verify_frames,
                                    opt.verify_seed) == ref;
    if (sound && cur_w - after_w > opt.min_gain_w) {
      net.commit_undo();
      cur_w = after_w;
      ++res.kept;
      core::metrics::count("logicopt.bdd_synth.kept");
    } else {
      net.rollback_undo();
      inc.revert_last();
      if (!sound) {
        ++res.unsound;
        core::metrics::count("logicopt.bdd_synth.unsound");
      } else {
        ++res.reverted;
        core::metrics::count("logicopt.bdd_synth.reverted");
      }
    }
  }

  res.power_after_w = cur_w;
  res.gates_after = net.num_gates();
  if (res.cones_capped != 0 || res.cones_limited != 0)
    res.note = std::to_string(res.cones_capped) + " cone(s) over the " +
               std::to_string(cap) + "-input cap, " +
               std::to_string(res.cones_limited) +
               " over the node budget (skipped, not silent)";
  return res;
}

}  // namespace lps::logicopt
