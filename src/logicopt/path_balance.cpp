#include "logicopt/path_balance.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

namespace lps::logicopt {

namespace {

// Insert `count` unit-delay buffers between net.node(user).fanins[slot] and
// its driver.
void pad_fanin(Netlist& net, NodeId user, std::size_t slot, int count) {
  NodeId cur = net.node(user).fanins[slot];
  for (int i = 0; i < count; ++i) {
    NodeId b = net.add_buf(cur);
    net.node(b).delay = 1;
    // Delay buffers are minimum-size cells: they only need to drive one
    // pin, so they present the smallest possible load to their driver.
    net.node(b).size = 0.5;
    cur = b;
  }
  net.replace_fanin(user, slot, cur);
}

}  // namespace

BalanceResult full_balance(Netlist& net) {
  BalanceResult r;
  r.critical_delay_before = net.critical_delay();
  // Process gates in topological order; at each gate pad the early fanins
  // up to the latest one.  After the pass, every path from sources to any
  // gate input has equal delay, so no gate can glitch (single switching
  // wave per cycle under the pure-delay model).
  auto order = net.topo_order();
  for (NodeId id : order) {
    const Node& nd = net.node(id);
    if (is_source(nd.type) || nd.type == GateType::Dff) continue;
    auto at = net.arrival_times();  // recompute; padding changes times
    int latest = 0;
    for (NodeId f : nd.fanins) latest = std::max(latest, at[f]);
    for (std::size_t k = 0; k < net.node(id).fanins.size(); ++k) {
      int lag = latest - at[net.node(id).fanins[k]];
      if (lag > 0) {
        pad_fanin(net, id, k, lag);
        r.buffers_inserted += lag;
      }
    }
  }
  r.critical_delay_after = net.critical_delay();
  return r;
}

BalanceResult partial_balance(Netlist& net, int buffer_budget) {
  BalanceResult r;
  r.critical_delay_before = net.critical_delay();
  while (r.buffers_inserted < buffer_budget) {
    auto at = net.arrival_times();
    // Find the fanin slot with the largest skew, weighted by the fanout
    // count of the gate (a skewed input on a high-fanout gate spawns the
    // most downstream glitching).
    double best_score = 0.0;
    NodeId best_node = kNoNode;
    std::size_t best_slot = 0;
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      const Node& nd = net.node(id);
      if (is_source(nd.type) || nd.type == GateType::Dff ||
          nd.type == GateType::Buf)
        continue;
      int latest = 0;
      for (NodeId f : nd.fanins) latest = std::max(latest, at[f]);
      for (std::size_t k = 0; k < nd.fanins.size(); ++k) {
        int lag = latest - at[nd.fanins[k]];
        if (lag <= 0) continue;
        double score =
            static_cast<double>(lag) * (1.0 + nd.fanouts.size());
        if (score > best_score) {
          best_score = score;
          best_node = id;
          best_slot = k;
        }
      }
    }
    if (best_node == kNoNode) break;  // fully balanced
    auto at2 = net.arrival_times();
    int latest = 0;
    for (NodeId f : net.node(best_node).fanins)
      latest = std::max(latest, at2[f]);
    int lag = latest - at2[net.node(best_node).fanins[best_slot]];
    lag = std::min(lag, buffer_budget - r.buffers_inserted);
    pad_fanin(net, best_node, best_slot, lag);
    r.buffers_inserted += lag;
  }
  r.critical_delay_after = net.critical_delay();
  return r;
}

}  // namespace lps::logicopt
