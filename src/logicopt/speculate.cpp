#include "logicopt/speculate.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "core/env.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "power/activity.hpp"

namespace lps::logicopt::speculate {

namespace {

std::atomic<int> g_override{0};

int env_workers() {
  static const int cached = static_cast<int>(
      core::env_long_or("LPS_OPT_WORKERS", 1, 256, 1));
  return cached;
}

}  // namespace

int default_workers() {
  int o = g_override.load(std::memory_order_relaxed);
  return o > 0 ? o : env_workers();
}

void set_default_workers(int n) {
  g_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int resolve_workers(int requested) {
  int w = requested > 0 ? requested : default_workers();
  return std::clamp(w, 1, 256);
}

ScopedWorkers::ScopedWorkers(int n)
    : prev_(g_override.load(std::memory_order_relaxed)) {
  set_default_workers(n);
}

ScopedWorkers::~ScopedWorkers() {
  g_override.store(prev_, std::memory_order_relaxed);
}

void run_workers(int workers, const std::function<void(int)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) team.emplace_back(fn, w);
  fn(0);
  for (auto& t : team) t.join();
}

DeltaScore score_delta(const power::Analysis& before,
                       const power::Analysis& after,
                       std::span<const NodeId> footprint) {
  DeltaScore r;
  const auto& pb = before.report.node_power_w;
  const auto& pa = after.report.node_power_w;
  double acc = 0.0;
  for (NodeId id : footprint) {
    double b = id < pb.size() ? pb[id] : 0.0;
    double a = id < pa.size() ? pa[id] : 0.0;
    acc += a - b;
  }
  r.clock_moved = before.clock_power_w != after.clock_power_w;
  r.delta_w = acc + (after.clock_power_w - before.clock_power_w);
  return r;
}

std::vector<NodeId> dirty_footprint(const Netlist& net,
                                    const Netlist::TouchedNodes& touched) {
  std::vector<bool> mask =
      net.fanout_cone_of(touched.value_roots, /*through_dffs=*/true);
  if (mask.size() < net.size()) mask.resize(net.size(), false);
  for (NodeId id : touched.ids)
    if (id < mask.size()) mask[id] = true;
  std::vector<NodeId> out;
  for (NodeId id = 0; id < mask.size(); ++id)
    if (mask[id]) out.push_back(id);
  return out;
}

std::vector<NodeId> read_closure(const Netlist& net,
                                 std::span<const NodeId> seeds, int depth) {
  std::vector<NodeId> all;
  std::vector<NodeId> frontier;
  for (NodeId s : seeds)
    if (s != kNoNode && s < net.size()) frontier.push_back(s);
  all = frontier;
  for (int d = 0; d < depth && !frontier.empty(); ++d) {
    std::vector<NodeId> next;
    for (NodeId u : frontier)
      for (NodeId f : net.node(u).fanins)
        if (f < net.size()) next.push_back(f);
    all.insert(all.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  // Sharing scans (find_gate) walk the fanout lists of closure nodes and
  // compare those fanouts' fanins; include the fanouts so an edit that
  // could flip such a comparison intersects this set.
  std::size_t base = all.size();
  for (std::size_t i = 0; i < base; ++i)
    for (NodeId u : net.node(all[i]).fanouts)
      if (u < net.size()) all.push_back(u);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

namespace {

// A gated register's clock contribution is summed per distinct enable net,
// in enable-id order — an ordering that can differ between the snapshot and
// the live netlist.  Any candidate touching such a register is re-scored
// serially; the record keeps its type even when tombstoned, so removed
// registers are caught too.
bool touches_gated_register(const Netlist& net,
                            const Netlist::TouchedNodes& touched) {
  for (NodeId id : touched.ids) {
    if (id >= net.size()) continue;
    const Node& n = net.node(id);
    if (n.type == GateType::Dff && n.fanins.size() == 2) return true;
  }
  return false;
}

void keep_below(std::vector<NodeId>& ids, std::size_t limit) {
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [limit](NodeId id) { return id >= limit; }),
            ids.end());
}

// Sorted unique copy of `ids` restricted to [0, limit).
std::vector<NodeId> canonical_below(std::span<const NodeId> ids,
                                    std::size_t limit) {
  std::vector<NodeId> out;
  out.reserve(ids.size());
  for (NodeId id : ids)
    if (id < limit) out.push_back(id);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

void rethrow_if_cancelled(const std::exception_ptr& e) {
  if (!e) return;
  try {
    std::rethrow_exception(e);
  } catch (const core::CancelledError&) {
    throw;
  } catch (...) {
    // Not a cancellation: the caller re-scores the candidate serially.
  }
}

bool same_touched(std::span<const NodeId> snap_ids,
                  std::span<const NodeId> snap_roots,
                  const Netlist::TouchedNodes& live,
                  std::size_t snapshot_size) {
  std::vector<NodeId> ids = canonical_below(live.ids, snapshot_size);
  if (ids.size() != snap_ids.size() ||
      !std::equal(ids.begin(), ids.end(), snap_ids.begin()))
    return false;
  std::vector<NodeId> roots = canonical_below(live.value_roots, snapshot_size);
  return roots.size() == snap_roots.size() &&
         std::equal(roots.begin(), roots.end(), snap_roots.begin());
}

std::vector<CandidateScore> score_rewrite_batch(
    const Netlist& net, const power::IncrementalAnalyzer& oracle,
    std::span<const rewrite::Candidate> batch, double min_gain_w,
    int workers) {
  std::vector<CandidateScore> out(batch.size());
  const std::size_t snap_size = net.size();
  std::atomic<std::size_t> next{0};

  auto work = [&](int) {
    std::optional<Netlist> clone;
    std::optional<power::IncrementalAnalyzer> worker_oracle;
    std::uint64_t base_digest = 0;
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= batch.size()) break;
      CandidateScore& sc = out[i];
      try {
        if (!clone) {
          clone.emplace(net.clone());
          worker_oracle.emplace(oracle.clone_for(*clone));
          base_digest = worker_oracle->outputs_digest();
        }
        const rewrite::Candidate& cand = batch[i];
        std::vector<NodeId> seeds{cand.target};
        if (cand.aux != kNoNode) seeds.push_back(cand.aux);
        sc.reads = read_closure(*clone, seeds, rewrite::kMaxMatchDepth);

        clone->begin_undo();
        bool applied = false;
        try {
          applied = rewrite::apply_rule(*clone, cand);
        } catch (...) {
          clone->rollback_undo();
          throw;
        }
        if (!applied) {
          // Stale at the snapshot; nothing was mutated.
          clone->rollback_undo();
          continue;
        }
        sc.applied = true;
        Netlist::TouchedNodes touched = clone->touched_nodes();
        if (touched.all) {
          // Wholesale invalidation would force the clone's oracle into a
          // full rebaseline (shared-pool work) — defer to the serial path.
          clone->rollback_undo();
          sc.forced_conflict = true;
          continue;
        }
        sc.touched_snap = canonical_below(touched.ids, snap_size);
        sc.roots_snap = canonical_below(touched.value_roots, snap_size);
        if (touches_gated_register(*clone, touched)) sc.forced_conflict = true;
        try {
          worker_oracle->reanalyze(touched);
        } catch (...) {
          clone->rollback_undo();
          throw;
        }
        sc.footprint = dirty_footprint(*clone, touched);
        DeltaScore d =
            score_delta(worker_oracle->previous_analysis(),
                        worker_oracle->analysis(), sc.footprint);
        sc.delta_w = d.delta_w;
        if (d.clock_moved) sc.forced_conflict = true;
        sc.keep = !sc.forced_conflict && d.delta_w < -min_gain_w;
        if (sc.keep) sc.sound = worker_oracle->outputs_digest() == base_digest;
        clone->rollback_undo();
        worker_oracle->revert_last();
        keep_below(sc.footprint, snap_size);
      } catch (...) {
        sc.error = std::current_exception();
        // The clone's exact state after a mid-candidate failure is not worth
        // reasoning about; rebuild it for the next pull.
        worker_oracle.reset();
        clone.reset();
      }
    }
  };
  run_workers(workers, work);
  core::metrics::count("logicopt.spec.speculated",
                       static_cast<double>(batch.size()));
  return out;
}

std::vector<power::Analysis> analyze_candidates(
    std::span<const Netlist* const> nets, const power::AnalysisOptions& ao,
    int workers) {
  std::vector<power::Analysis> out(nets.size());
  std::vector<std::exception_ptr> errs(nets.size());
  std::atomic<std::size_t> next{0};
  int team = std::clamp<int>(workers, 1, static_cast<int>(nets.size() ? nets.size() : 1));
  run_workers(team, [&](int) {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= nets.size()) break;
      try {
        out[i] = power::analyze(*nets[i], ao);
      } catch (...) {
        errs[i] = std::current_exception();
      }
    }
  });
  for (std::exception_ptr& e : errs)
    if (e) std::rethrow_exception(e);
  return out;
}

}  // namespace lps::logicopt::speculate
