// techmap.hpp — DAGON-style tree-covering technology mapping for area,
// delay, or power.
//
// §III-B: "The graph covering formulation of [20] has been extended to the
// power cost function.  Under the zero delay model, the optimal mapping of
// a tree can be determined in polynomial time."  This implements that
// dynamic program: the NAND2/INV subject graph is split into trees at
// multi-fanout points, each tree is covered optimally by library patterns,
// and three cost functions are offered:
//   Area  — sum of cell areas (the classic objective);
//   Delay — arrival-time minimization along the covered tree;
//   Power — activity-weighted switched capacitance, N(root)·C_out(cell) +
//           Σ N(leaf)·C_in(cell), i.e. the zero-delay power cost of Tiwari,
//           Ashar & Malik [43] / Tsui, Pedram & Despain [48].

#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "logicopt/library.hpp"
#include "netlist/netlist.hpp"

namespace lps::logicopt {

enum class MapObjective { Area, Delay, Power };

struct MappedInstance {
  const LibGate* cell = nullptr;
  NodeId root = kNoNode;            // subject node the cell output drives
  std::vector<NodeId> leaves;       // subject nodes at the cell inputs
};

struct MapResult {
  std::vector<MappedInstance> instances;
  double total_area = 0.0;
  double arrival = 0.0;             // critical path through mapped cells
  double switched_cap_ff = 0.0;     // Σ activity·cap over mapped pins
  std::map<std::string, int> cell_histogram;

  /// Rebuild a plain netlist from the chosen cells (each cell expands to
  /// its pattern logic) — used to verify the mapping preserves function.
  Netlist to_netlist(const Netlist& subject) const;
};

/// Map `net` (any gate mix; it is decomposed internally).  `activity` gives
/// toggles-per-cycle for the *subject* netlist nodes; pass empty to let the
/// mapper simulate the subject graph itself (2048 random vectors, seed 1).
MapResult tech_map(const Netlist& net, const Library& lib,
                   MapObjective objective,
                   std::span<const double> subject_activity = {});

/// The subject graph the mapper used (deterministic; exposed so callers can
/// compute their own activities or inspect coverage).
Netlist subject_graph(const Netlist& net);

}  // namespace lps::logicopt
