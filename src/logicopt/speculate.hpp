// speculate.hpp — speculative parallel candidate scoring with a
// deterministic commit order.
//
// The optimization engines (rewrite/engine.cpp, resynth.cpp,
// power_factor.cpp) evaluate long queues of independent candidates, each
// scored through a power oracle — serially, on one thread, while the
// simulator underneath scales to SIMD lanes and pinned threads.  This layer
// parallelizes the *candidate* axis without giving up the engines' defining
// guarantee: the kept sequence and the final netlist are bit-identical to
// the sequential engine at any worker count.
//
// How identity is preserved:
//
//  * Workers score candidates against a *snapshot* of the netlist: each
//    worker owns a Netlist::clone() plus an IncrementalAnalyzer::clone_for()
//    fork of the engine's oracle, applies the candidate there, cone-scores
//    it, and rolls its clone back.  The live netlist is never touched.
//
//  * Decisions are expressed as footprint-local power *deltas*
//    (score_delta): the sum, in ascending node-id order, of per-node
//    total-power differences over the candidate's dirty footprint, plus the
//    global clock-tree term when it moved.  Every addend is a pure function
//    of per-node state, so a candidate whose footprint and read set are
//    disjoint from every earlier keep in the batch produces the same addend
//    sequence — and therefore the bit-identical delta — on the snapshot as
//    it would on the live netlist.  Such candidates commit without
//    re-scoring.
//
//  * Candidates that overlap an earlier keep (ConflictSet over the
//    snapshot id space, read closure ∪ dirty footprint vs committed
//    touched sets ∪ *their* dirty footprints — both sides carry the
//    activity cone, so downstream reconvergence with a keep's toggle
//    changes is a conflict even without structural overlap) are re-scored
//    serially through the engine's own oracle, exactly where the
//    sequential engine would have scored them.  Counted as
//    logicopt.spec.conflicts / logicopt.spec.rescored — never silent.
//
//  * Commits re-apply the candidate on the live netlist in queue order, so
//    node-id assignment matches the sequential engine exactly.
//
// Workers are dedicated std::threads, never the shared core::ThreadPool:
// the pool is non-reentrant, and a worker's oracle fallback path could
// otherwise deadlock behind its own batch.  For the same reason a worker
// never scores a wholesale-invalidation (`touched.all`) candidate — it
// defers it to the serial path instead of re-entering measure_activity.

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <vector>

#include "logicopt/rewrite/rules.hpp"
#include "netlist/netlist.hpp"
#include "power/incremental.hpp"

namespace lps::logicopt::speculate {

/// Resolved LPS_OPT_WORKERS knob (parsed once through core/env, range
/// 1..256, default 1 = sequential engines).
int default_workers();
/// Process-wide override of the knob (0 restores the environment value).
/// Threaded from PassManager::Options / the lpsd optimize verb.
void set_default_workers(int n);
/// Map an options field to an effective worker count: `requested` when
/// positive, else default_workers(); clamped to [1, 256].
int resolve_workers(int requested);

/// RAII override of default_workers() for tests and benches.
class ScopedWorkers {
 public:
  explicit ScopedWorkers(int n);
  ~ScopedWorkers();
  ScopedWorkers(const ScopedWorkers&) = delete;
  ScopedWorkers& operator=(const ScopedWorkers&) = delete;

 private:
  int prev_;
};

/// Run fn(worker_index) for indices [0, workers) on dedicated threads (the
/// calling thread participates as worker 0).  fn must not throw — capture
/// per-item exceptions into result slots instead, so the commit loop can
/// rethrow them in deterministic queue order.
void run_workers(int workers, const std::function<void(int)>& fn);

/// Footprint-local power delta between two analyses of the same oracle
/// stimulus.  delta_w = Σ over `footprint` (ascending ids) of
/// node_power_w[after] − node_power_w[before], plus the clock-tree
/// difference; clock_moved reports whether that global term changed at all
/// (such candidates must be re-scored serially — the clock sum's term
/// order depends on enable node ids, which shift between snapshot and live
/// commits).
struct DeltaScore {
  double delta_w = 0.0;
  bool clock_moved = false;
};
DeltaScore score_delta(const power::Analysis& before,
                       const power::Analysis& after,
                       std::span<const NodeId> footprint);

/// Sorted unique dirty footprint of a journaled mutation: the touched ids
/// plus the transitive fanout cone of its value roots (through registers),
/// evaluated on the mutated netlist.
std::vector<NodeId> dirty_footprint(const Netlist& net,
                                    const Netlist::TouchedNodes& touched);

/// Conservative structural read set: the fanin closure of `seeds` to
/// `depth` levels, plus every fanout-list member of a closure node (the
/// rewrite matchers re-validate via fanin walks and find-gate sharing
/// scans over operand fanouts; any structural change that could flip a
/// match journals a node this closure contains).
std::vector<NodeId> read_closure(const Netlist& net,
                                 std::span<const NodeId> seeds, int depth);

/// Committed-keep id set over the snapshot id space.  Ids at or beyond the
/// snapshot size are ignored on both sides: nodes created after the
/// snapshot can never be read by a snapshot-scored candidate.
class ConflictSet {
 public:
  explicit ConflictSet(std::size_t snapshot_size)
      : mask_(snapshot_size, 0) {}
  void add(std::span<const NodeId> ids) {
    for (NodeId id : ids)
      if (id < mask_.size() && !mask_[id]) {
        mask_[id] = 1;
        ++count_;
      }
  }
  bool hits(std::span<const NodeId> ids) const {
    if (count_ == 0) return false;
    for (NodeId id : ids)
      if (id < mask_.size() && mask_[id]) return true;
    return false;
  }
  bool empty() const { return count_ == 0; }

 private:
  std::vector<char> mask_;
  std::size_t count_ = 0;
};

/// One speculated verdict for a rewrite-engine candidate.
struct CandidateScore {
  /// apply_rule() succeeded on the worker's snapshot clone.  False = the
  /// candidate was already stale at the snapshot; the commit loop still
  /// re-checks staleness when the candidate conflicts.
  bool applied = false;
  /// Always re-score serially: wholesale invalidation (`touched.all`),
  /// gated-register edits (clock-term ordering risk) or a moved clock term.
  bool forced_conflict = false;
  bool keep = false;   // delta_w < -min_gain_w
  bool sound = true;   // cone-digest proof verdict (meaningful when keep)
  double delta_w = 0.0;
  std::vector<NodeId> reads;      // snapshot-id read closure (pre-apply)
  std::vector<NodeId> footprint;  // dirty footprint, filtered < snapshot size
  /// Canonical (sorted unique, < snapshot size) touched ids and value
  /// roots of the snapshot apply.  The commit loop cross-checks these
  /// against the live apply's touched set: a mismatch means the live edit
  /// differs from the one the snapshot scored (e.g. a matcher read past
  /// the read closure), so the verdict must not transplant — the
  /// candidate is re-scored serially instead.
  std::vector<NodeId> touched_snap;
  std::vector<NodeId> roots_snap;
  /// Scoring failed on the worker (its clone was discarded).  The commit
  /// loop rethrows a core::CancelledError at this candidate's queue
  /// position — after committing every earlier candidate, the same prefix
  /// the sequential engine would have committed before the deadline —
  /// via rethrow_if_cancelled().  Any other failure is treated as a
  /// conflict: the candidate is re-applied and re-scored serially, so a
  /// worker-side engine failure is retried on the live path and counted
  /// (logicopt.spec.conflicts / .rescored), never silently dropped.
  std::exception_ptr error;
};

/// Rethrow `e` when it holds a core::CancelledError; return normally for
/// null or any other exception.  Commit loops call this on a speculated
/// candidate's error slot so cooperative cancellation propagates instead
/// of being swallowed by the serial re-score fallback (which would re-run
/// the cancelled work).
void rethrow_if_cancelled(const std::exception_ptr& e);

/// True when the live apply's touched set matches the snapshot apply's,
/// restricted to pre-snapshot ids: both the touched ids and the value
/// roots, compared as sorted unique sets below `snapshot_size`.
/// `snap_ids`/`snap_roots` must already be canonical (CandidateScore
/// stores them that way); ids created after the snapshot differ freely.
bool same_touched(std::span<const NodeId> snap_ids,
                  std::span<const NodeId> snap_roots,
                  const Netlist::TouchedNodes& live,
                  std::size_t snapshot_size);

/// Score a batch of rewrite candidates against the current state of `net`
/// on `workers` dedicated threads.  `oracle` must be synced to `net`
/// (pending keeps reanalyzed) before the call; it is only read (cloned),
/// never mutated.  Counts logicopt.spec.speculated.
std::vector<CandidateScore> score_rewrite_batch(
    const Netlist& net, const power::IncrementalAnalyzer& oracle,
    std::span<const rewrite::Candidate> batch, double min_gain_w,
    int workers);

/// Analyze independent candidate netlists concurrently (power_factor's
/// flat/literal/power forms), one dedicated thread per netlist up to
/// `workers`.  Results are in input order and bit-identical to serial
/// power::analyze calls — the analyses share nothing.  The first failure
/// (lowest input index) is rethrown after all threads join.
std::vector<power::Analysis> analyze_candidates(
    std::span<const Netlist* const> nets, const power::AnalysisOptions& ao,
    int workers);

}  // namespace lps::logicopt::speculate
