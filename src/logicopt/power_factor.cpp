#include "logicopt/power_factor.hpp"

#include "logicopt/speculate.hpp"
#include "power/activity.hpp"

namespace lps::logicopt {

namespace {

std::vector<NodeId> make_inputs(Netlist& n, unsigned num_vars) {
  std::vector<NodeId> leaves;
  for (unsigned v = 0; v < num_vars; ++v)
    leaves.push_back(n.add_input("x" + std::to_string(v)));
  return leaves;
}

}  // namespace

Netlist sop_to_netlist(const sop::Sop& f, const std::string& name) {
  Netlist n(name);
  auto leaves = make_inputs(n, f.num_vars());
  std::vector<NodeId> terms;
  for (const auto& c : f.cubes()) {
    std::vector<NodeId> lits;
    for (unsigned v = 0; v < f.num_vars(); ++v) {
      if (c.has_pos(v)) lits.push_back(leaves[v]);
      if (c.has_neg(v)) lits.push_back(n.add_not(leaves[v]));
    }
    if (lits.empty())
      terms.push_back(n.add_const(true));
    else if (lits.size() == 1)
      terms.push_back(lits[0]);
    else
      terms.push_back(n.add_gate(GateType::And, std::move(lits)));
  }
  NodeId out;
  if (terms.empty())
    out = n.add_const(false);
  else if (terms.size() == 1)
    out = terms[0];
  else
    out = n.add_gate(GateType::Or, std::move(terms));
  n.add_output(out, "f");
  return n;
}

Netlist expr_to_netlist(const sop::Expr& e, unsigned num_vars,
                        const std::string& name) {
  Netlist n(name);
  auto leaves = make_inputs(n, num_vars);
  NodeId out = sop::build_expr(n, e, leaves);
  n.add_output(out, "f");
  n.sweep();
  return n;
}

FactoringComparison compare_factorings(const sop::Sop& f,
                                       const std::vector<double>& one_prob,
                                       bool rescore, int workers) {
  FactoringComparison r;
  r.flat = sop_to_netlist(f, "flat");
  auto lit_expr = sop::factor(f);
  std::vector<double> weights;
  weights.reserve(one_prob.size());
  for (double p : one_prob) weights.push_back(2.0 * p * (1.0 - p));
  auto pow_expr = sop::factor_weighted(f, weights);
  r.literal_form = expr_to_netlist(lit_expr, f.num_vars(), "literal_factored");
  r.power_form = expr_to_netlist(pow_expr, f.num_vars(), "power_factored");
  r.lits_flat = f.num_literals();
  r.lits_literal = lit_expr.num_literals();
  r.lits_power = pow_expr.num_literals();
  if (rescore) {
    // Score the *built* structures: the factoring weights only describe the
    // cover's inputs, so two factorings with equal weighted literals can
    // still switch very differently once their internal nodes exist.  The
    // three analyses share nothing, so they run concurrently through the
    // speculation layer; the results (and therefore measured_winner) are
    // bit-identical at any worker count.
    power::AnalysisOptions ao;
    ao.mode = power::ActivityMode::ZeroDelay;
    ao.n_vectors = 4096;
    ao.pi_one_prob = one_prob;
    const Netlist* forms[3] = {&r.flat, &r.literal_form, &r.power_form};
    std::vector<power::Analysis> scored = speculate::analyze_candidates(
        forms, ao, speculate::resolve_workers(workers));
    r.power_flat_w = scored[0].report.breakdown.total_w();
    r.power_literal_w = scored[1].report.breakdown.total_w();
    r.power_power_w = scored[2].report.breakdown.total_w();
    r.measured_winner =
        r.power_power_w <= r.power_literal_w ? "power" : "literal";
  }
  return r;
}

}  // namespace lps::logicopt
