// decompose_power.hpp — technology decomposition targeting low power.
//
// §III-B cites Tsui, Pedram & Despain, "Technology Decomposition and
// Mapping Targeting Low Power Dissipation" [48]: before mapping, wide gates
// are decomposed into 2-input trees, and the *shape* of that tree fixes how
// much internal switched capacitance the mapped netlist can ever reach.
// The low-power decomposition is a Huffman-style construction: repeatedly
// combine the two least-active signals, so high-activity inputs enter the
// tree as late (as close to the root) as possible and drive the fewest
// internal nodes.
//
// decompose_balanced() and decompose_chain() provide the power-oblivious
// baselines the [48] experiments compare against.

#pragma once

#include <span>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

enum class DecomposeShape {
  Chain,     // left-deep chain in fanin order
  Balanced,  // minimum-depth tree
  Huffman,   // activity-ordered (low-power) tree [48]
};

struct DecomposeResult {
  int gates_decomposed = 0;  // wide gates rewritten
  int gates_added = 0;       // 2-input gates created
};

/// Rewrite every AND/OR/NAND/NOR/XOR/XNOR gate with more than two fanins
/// into a tree of 2-input gates of the given shape.  For the Huffman shape,
/// `activity` supplies per-node toggle rates (e.g. from
/// sim::measure_activity) used as the combining weights; signal activity of
/// an internal node is estimated as the sum of its children's weights
/// (conservative, monotone — sufficient for ordering).  Function is
/// preserved exactly.
DecomposeResult decompose_wide_gates(Netlist& net, DecomposeShape shape,
                                     std::span<const double> activity = {});

}  // namespace lps::logicopt
