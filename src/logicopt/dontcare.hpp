// dontcare.hpp — observability-don't-care optimization for low power.
//
// §III-A.1: "The power dissipation of a gate is dependent on the probability
// of the gate evaluating to a 1 or a 0.  This probability can be changed by
// utilizing the don't-care sets" (Shen et al. [38], improved by Iman &
// Pedram [19] which considers the transitive fanout).
//
// We implement the exact-ODC form of the idea: for each node n the ODC set
// is computed symbolically (replace n by a fresh BDD variable y and compare
// output cofactors).  Within the ODC freedom the node is replaced by
//   - a constant, when the care set pins it;
//   - an existing signal g (possibly a fanin), when f_n and f_g agree on the
//     care set and the swap reduces activity-weighted capacitance.
// Each accepted rewrite removes the node's switched capacitance entirely —
// the activity-directed selection among admissible rewrites is exactly the
// power-vs-area distinction [38] draws against classic don't-care methods.

#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

struct DontCareOptions {
  std::size_t bdd_limit = 1u << 22;
  int max_rewrites = 1000;
  // Only consider merge targets whose added fanout activity is below the
  // removed node's activity gain (power-aware filter); with false, any
  // functionally admissible merge is taken (area-style optimization).
  bool power_aware = true;
};

struct DontCareResult {
  int const_replacements = 0;
  int merges = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
};

/// Run ODC-based rewriting until fixpoint (or the rewrite cap).  Preserves
/// I/O behaviour exactly; callers can verify with bdd::equivalent_bdd.
/// `toggles_per_cycle` supplies per-node activities for the power-aware
/// candidate ranking (e.g. from sim::measure_activity on the same net).
DontCareResult optimize_dontcare(Netlist& net,
                                 const std::vector<double>& toggles_per_cycle,
                                 const DontCareOptions& opt = {});

}  // namespace lps::logicopt
