// path_balance.hpp — buffer insertion to suppress spurious transitions.
//
// §III-A.2: "In order to reduce spurious switching activity, the delays of
// paths that converge at each gate in the circuit should be roughly equal.
// By selectively adding unit-delay buffers to the inputs of gates ... the
// delays of all paths in the circuit can be made equal.  This addition will
// not increase the critical delay of the circuit, and will effectively
// eliminate spurious transitions.  However, the addition of buffers
// increases capacitance which may offset the reduction."
//
// full_balance() equalizes every reconvergent path (zero glitches under the
// unit/assigned delay model); partial_balance() inserts at most a budget of
// buffers, targeting the fanin skews that feed the most downstream
// capacitance first — the "reduce rather than completely eliminate" variant
// the survey describes (cf. the multiplier of Lemonds & Mahant-Shetti [25]).

#pragma once

#include "netlist/netlist.hpp"

namespace lps::logicopt {

struct BalanceResult {
  int buffers_inserted = 0;
  int critical_delay_before = 0;
  int critical_delay_after = 0;
};

/// Pad every gate fanin so all of the gate's input arrival times are equal.
/// The circuit function and critical delay are preserved.
BalanceResult full_balance(Netlist& net);

/// Insert at most `buffer_budget` buffers, greedily flattening the largest
/// capacitance-weighted arrival skews.
BalanceResult partial_balance(Netlist& net, int buffer_budget);

}  // namespace lps::logicopt
