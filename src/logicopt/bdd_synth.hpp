// bdd_synth.hpp — per-cone BDD→MUX extraction ("hybrid" synthesis).
//
// §III-A: SOP minimization and factoring are one family of multi-level
// restructurings; BDD-based synthesis is the other.  A reduced ordered BDD
// is itself a multiplexer network — one MUX per internal node, selector =
// the node's variable — and for reconvergent/arithmetic cones that network
// is often both smaller and lower-switching than the factored SOP form,
// because the canonical DAG shares every common subfunction by
// construction.  The survey's prescription is *hybrid* extraction: try the
// BDD form per cone and keep whichever representation wins.
//
// This engine does exactly that, on the synthesis-scale manager
// (bdd/bdd.hpp):
//
//   1. enumerate extraction roots (primary outputs and register D/EN
//      fanins) and take each root's transitive fanin cone, skipping cones
//      whose support exceeds the input cap;
//   2. build the cone's function in a fresh per-cone manager (complement
//      edges halve arithmetic cones; auto-GC bounds the build; the
//      per-gate scaffolding is dropped before reordering);
//   3. sift with per-variable switching-activity weights — high-activity
//      variables sink toward the leaves, where their toggles drive few MUX
//      selectors (bdd::Manager::SiftOptions::weights);
//   4. lower the BDD to a MUX/INV network (bdd::synthesize_bdd; complement
//      edges become one shared inverter per polarity) and splice it in
//      place of the root inside a nested undo epoch;
//   5. score the candidate through the cone-scoped incremental power
//      oracle (power/incremental.hpp) and keep it only when total
//      switching power strictly drops — losers roll back in O(edit).
//
// Soundness: every kept cone is proven twice — the oracle's primary-output
// stream digest (IncrementalAnalyzer::outputs_digest) must be unchanged
// after the cone re-simulation, and a whole-netlist interpreter trace
// (sim::functional_trace over verify_frames) must match the pre-candidate
// one.  A proof failure rolls the candidate back and counts `unsound`; a
// defect can cost an optimization, never correctness.
//
// Determinism: the engine is sequential and owns a private ZeroDelay
// oracle seeded from the options, so the kept-cone sequence is a pure
// function of the input netlist and options — independent of
// LPS_OPT_WORKERS, lane width or thread count.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace lps::logicopt {

struct BddSynthOptions {
  /// Support cap: cones with more source inputs are skipped (counted in
  /// `cones_capped`, never silent).  0 = the LPS_BDD_SYNTH_MAX_INPUTS
  /// environment default (18).
  unsigned max_inputs = 0;
  /// Per-cone manager node budget; a cone that exceeds it while building
  /// or sifting is skipped (counted in `cones_limited`).
  std::size_t node_limit = std::size_t{1} << 20;
  /// Activity-weighted sifting before extraction: 1 = on, 0 = off,
  /// -1 = the LPS_BDD_SYNTH_SIFT environment default (on).
  int sift = -1;
  /// Sifting bail-out: abandon a variable's walk past best × growth.
  double sift_growth = 2.0;
  /// Stimulus for the private ZeroDelay scoring oracle.
  std::size_t sim_vectors = 4096;
  std::uint64_t seed = 7;
  /// Keep a cone only when it saves strictly more than this (watts).
  double min_gain_w = 0.0;
  /// Interpreter re-proof stimulus per candidate (0 disables the trace
  /// proof; the PO-stream digest proof always runs).
  std::size_t verify_frames = 256;
  std::uint64_t verify_seed = 17;
};

struct BddSynthResult {
  std::size_t cones_examined = 0;
  std::size_t cones_capped = 0;   // support exceeded max_inputs
  std::size_t cones_limited = 0;  // per-cone manager hit its node budget
  std::size_t kept = 0;           // spliced in and committed
  std::size_t reverted = 0;       // legal but not a power win; rolled back
  std::size_t unsound = 0;        // proof failures (rolled back; also the
                                  // logicopt.bdd_synth.unsound metric)
  /// Max live-node watermark over the per-cone managers (complement edges
  /// + GC at work; what experiment E27's peak_live_ratio band audits).
  std::size_t peak_live_nodes = 0;
  double power_before_w = 0.0;  // oracle estimate at entry
  double power_after_w = 0.0;   // oracle estimate at exit
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  /// One-line diagnostic describing any cap that was hit; empty otherwise.
  std::string note;
};

/// Run hybrid BDD→MUX extraction in place.  Mutations nest correctly
/// inside a caller's active undo epoch (each cone runs in an inner epoch).
BddSynthResult synthesize_bdd_cones(Netlist& net,
                                    const BddSynthOptions& opt = {});

}  // namespace lps::logicopt
