#include "sw/regalloc.hpp"

#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace lps::sw {

namespace {

// Which Instr fields are register reads / writes for each opcode.
struct Fields {
  std::vector<int Instr::*> reads;
  std::vector<int Instr::*> writes;
};

Fields fields_of(Opcode op) {
  switch (op) {
    case Opcode::LoadImm: return {{}, {&Instr::rd}};
    case Opcode::Load: return {{}, {&Instr::rd}};
    case Opcode::DualLoad: return {{}, {&Instr::rd, &Instr::rd2}};
    case Opcode::Store: return {{&Instr::rs1}, {}};
    case Opcode::Move: return {{&Instr::rs1}, {&Instr::rd}};
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      return {{&Instr::rs1, &Instr::rs2}, {&Instr::rd}};
    case Opcode::Mac: return {{&Instr::rs1, &Instr::rs2}, {}};
    case Opcode::ReadAcc: return {{}, {&Instr::rd}};
    case Opcode::Shift: return {{&Instr::rs1}, {&Instr::rd}};
    default: return {};
  }
}

}  // namespace

AllocResult allocate(const VirtualProgram& vp, int num_regs, int spill_base,
                     const SwPowerParams& p) {
  if (num_regs < 2 || num_regs > kNumRegs)
    throw std::invalid_argument("allocate: register count out of range");
  AllocResult out;

  // Last use of each virtual register (for dead-on-evict stores).
  std::map<int, std::size_t> last_use;
  for (std::size_t k = 0; k < vp.size(); ++k) {
    Fields f = fields_of(vp[k].op);
    Instr tmp = vp[k];
    for (auto m : f.reads) last_use[tmp.*m] = k;
    for (auto m : f.writes) last_use[tmp.*m] = k;
  }

  std::map<int, int> preg_of;            // vreg -> preg
  std::vector<int> vreg_in(num_regs, -1);  // preg -> vreg
  std::vector<std::size_t> stamp(num_regs, 0);
  std::map<int, int> slot_of;  // vreg -> spill address
  std::map<int, bool> dirty;   // vreg value newer than its slot
  int next_slot = spill_base;
  std::size_t clock = 1;

  auto slot_for = [&](int v) {
    auto it = slot_of.find(v);
    if (it != slot_of.end()) return it->second;
    slot_of[v] = next_slot;
    return next_slot++;
  };

  auto evict = [&](std::size_t at) {
    // LRU victim.
    int victim = 0;
    for (int r = 1; r < num_regs; ++r)
      if (stamp[r] < stamp[victim]) victim = r;
    int v = vreg_in[victim];
    if (v >= 0) {
      if (dirty[v] && last_use[v] > at) {
        out.program.push_back(
            {Opcode::Store, 0, 0, victim, 0, 0, slot_for(v)});
        ++out.spill_stores;
      }
      dirty[v] = false;
      preg_of.erase(v);
    }
    vreg_in[victim] = -1;
    return victim;
  };

  auto ensure_loaded = [&](int v, std::size_t at) {
    if (auto it = preg_of.find(v); it != preg_of.end()) {
      stamp[it->second] = clock++;
      return it->second;
    }
    int r = -1;
    for (int q = 0; q < num_regs; ++q)
      if (vreg_in[q] < 0) {
        r = q;
        break;
      }
    if (r < 0) r = evict(at);
    out.program.push_back({Opcode::Load, r, 0, 0, 0, 0, slot_for(v)});
    ++out.spill_loads;
    preg_of[v] = r;
    vreg_in[r] = v;
    stamp[r] = clock++;
    return r;
  };

  auto place_write = [&](int v, std::size_t at) {
    if (auto it = preg_of.find(v); it != preg_of.end()) {
      stamp[it->second] = clock++;
      dirty[v] = true;
      return it->second;
    }
    int r = -1;
    for (int q = 0; q < num_regs; ++q)
      if (vreg_in[q] < 0) {
        r = q;
        break;
      }
    if (r < 0) r = evict(at);
    preg_of[v] = r;
    vreg_in[r] = v;
    stamp[r] = clock++;
    dirty[v] = true;
    return r;
  };

  for (std::size_t k = 0; k < vp.size(); ++k) {
    Instr i = vp[k];
    Fields f = fields_of(i.op);
    // Reads first (they may trigger reloads), then writes.
    for (auto m : f.reads) i.*m = ensure_loaded(vp[k].*m, k);
    for (auto m : f.writes) i.*m = place_write(vp[k].*m, k);
    out.program.push_back(i);
  }
  out.energy = program_energy(out.program, p);
  return out;
}

}  // namespace lps::sw
