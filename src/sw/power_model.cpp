#include "sw/power_model.hpp"

#include <bit>
#include <cstdint>

namespace lps::sw {

namespace {

// Synthetic "control word" per opcode: which datapath resources the opcode
// activates (ALU, multiplier, memory unit, accumulator, register write,
// immediate path).  Overhead between adjacent instructions scales with the
// Hamming distance of these words — the circuit-state effect of [46].
std::uint32_t control_word(Opcode op) {
  constexpr std::uint32_t ALU = 1 << 0, MUL = 1 << 1, MEM = 1 << 2,
                          ACC = 1 << 3, WREG = 1 << 4, IMM = 1 << 5,
                          MEM2 = 1 << 6;
  switch (op) {
    case Opcode::Nop: return 0;
    case Opcode::LoadImm: return WREG | IMM;
    case Opcode::Load: return MEM | WREG;
    case Opcode::DualLoad: return MEM | MEM2 | WREG;
    case Opcode::Store: return MEM;
    case Opcode::Move: return WREG;
    case Opcode::Add:
    case Opcode::Sub: return ALU | WREG;
    case Opcode::Mul: return MUL | WREG;
    case Opcode::Mac: return MUL | ACC | WREG;
    case Opcode::ReadAcc: return ACC | WREG;
    case Opcode::ClearAcc: return ACC;
    case Opcode::Shift: return ALU | WREG | IMM;
  }
  return 0;
}

}  // namespace

double base_current_ma(Opcode op, const SwPowerParams& p) {
  double ma;
  switch (op) {
    case Opcode::Nop: ma = 0.30; break;
    case Opcode::LoadImm: ma = 0.45; break;
    case Opcode::Move: ma = 0.40; break;
    case Opcode::Add:
    case Opcode::Sub: ma = 0.55; break;
    case Opcode::Shift: ma = 0.50; break;
    case Opcode::Mul: ma = 1.10; break;
    case Opcode::Mac: ma = 1.05; break;
    case Opcode::ReadAcc:
    case Opcode::ClearAcc: ma = 0.40; break;
    // The register-vs-memory asymmetry: memory operands are ~3x.
    case Opcode::Load: ma = 1.60; break;
    case Opcode::Store: ma = 1.70; break;
    // Packed access: two words for ~1.3x the cost of one.
    case Opcode::DualLoad: ma = 2.10; break;
    default: ma = 0.5; break;
  }
  return ma * p.ma_per_cycle_base;
}

double overhead_cost(Opcode a, Opcode b, const SwPowerParams& p) {
  int bits = std::popcount(control_word(a) ^ control_word(b));
  return bits * p.overhead_ma_per_bit;
}

double EnergyReport::energy_uj(const SwPowerParams& p) const {
  // mA * cycles at freq -> charge; E = Q * V.  (1e-3 A * s) * V = J.
  double seconds_per_cycle = 1e-6 / p.freq_mhz;
  return total_macycles() * 1e-3 * seconds_per_cycle * p.vdd * 1e6;
}

EnergyReport program_energy(const Program& prog, const SwPowerParams& p) {
  EnergyReport r;
  for (std::size_t k = 0; k < prog.size(); ++k) {
    int cyc = cycles_of(prog[k].op);
    r.cycles += cyc;
    r.base_macycles += base_current_ma(prog[k].op, p) * cyc;
    if (k > 0) r.overhead_macycles += overhead_cost(prog[k - 1].op, prog[k].op, p);
  }
  return r;
}

}  // namespace lps::sw
