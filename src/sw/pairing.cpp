#include "sw/pairing.hpp"

namespace lps::sw {

PairingResult pack_loads(const Program& p, const SwPowerParams& pp) {
  PairingResult r;
  r.before = program_energy(p, pp);
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (k + 1 < p.size() && p[k].op == Opcode::Load &&
        p[k + 1].op == Opcode::Load && p[k + 1].addr == p[k].addr + 1 &&
        p[k + 1].rd != p[k].rd) {
      Instr d;
      d.op = Opcode::DualLoad;
      d.rd = p[k].rd;
      d.rd2 = p[k + 1].rd;
      d.addr = p[k].addr;
      r.program.push_back(d);
      ++r.loads_packed;
      ++k;  // consume the pair
      continue;
    }
    r.program.push_back(p[k]);
  }
  r.after = program_energy(r.program, pp);
  return r;
}

PairingResult fuse_mac(const Program& p, int sum_reg,
                       const SwPowerParams& pp) {
  PairingResult r;
  r.before = program_energy(p, pp);
  // Bail out untouched when the idiom never appears.
  bool fusible = false;
  for (std::size_t k = 0; k + 1 < p.size(); ++k)
    if (p[k].op == Opcode::Mul && p[k + 1].op == Opcode::Add &&
        p[k + 1].rd == sum_reg && p[k + 1].rs1 == sum_reg &&
        p[k + 1].rs2 == p[k].rd && p[k].rd != sum_reg)
      fusible = true;
  if (!fusible) {
    r.program = p;
    r.after = r.before;
    return r;
  }
  r.program.push_back({Opcode::ClearAcc});
  bool fused_any = false;
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (k + 1 < p.size() && p[k].op == Opcode::Mul &&
        p[k + 1].op == Opcode::Add && p[k + 1].rd == sum_reg &&
        p[k + 1].rs1 == sum_reg && p[k + 1].rs2 == p[k].rd &&
        p[k].rd != sum_reg) {
      // Check the product register is dead afterwards.
      bool dead = true;
      for (std::size_t j = k + 2; j < p.size(); ++j) {
        Access a = access_of(p[j]);
        for (int rr : a.reads)
          if (rr == p[k].rd) dead = false;
        for (int ww : a.writes)
          if (ww == p[k].rd) {
            j = p.size();  // redefined: dead from here
            break;
          }
        if (!dead) break;
      }
      if (dead) {
        Instr m;
        m.op = Opcode::Mac;
        m.rs1 = p[k].rs1;
        m.rs2 = p[k].rs2;
        r.program.push_back(m);
        ++r.macs_fused;
        fused_any = true;
        ++k;
        continue;
      }
    }
    // Skip the initial zeroing of the reduction register (ClearAcc covers
    // it) only if it is the canonical `ldi sum, #0`.
    if (p[k].op == Opcode::LoadImm && p[k].rd == sum_reg && p[k].imm == 0) {
      continue;
    }
    r.program.push_back(p[k]);
  }
  // Restore the architectural register.
  if (fused_any) {
    Instr ra;
    ra.op = Opcode::ReadAcc;
    ra.rd = sum_reg;
    // Insert before any trailing store that reads sum_reg.
    std::size_t pos = r.program.size();
    while (pos > 0) {
      const Instr& last = r.program[pos - 1];
      if (last.op == Opcode::Store && last.rs1 == sum_reg)
        --pos;
      else
        break;
    }
    r.program.insert(r.program.begin() + pos, ra);
  }
  r.after = program_energy(r.program, pp);
  return r;
}

Program dot_product_naive(int n, int x_base, int c_base, int out_addr) {
  Program p;
  const int sum = 0, x = 1, c = 2, t = 3;
  p.push_back({Opcode::LoadImm, sum, 0, 0, 0, 0, 0});
  for (int i = 0; i < n; ++i) {
    p.push_back({Opcode::Load, x, 0, 0, 0, 0, x_base + i});
    p.push_back({Opcode::Load, c, 0, 0, 0, 0, c_base + i});
    p.push_back({Opcode::Mul, t, 0, x, c, 0, 0});
    p.push_back({Opcode::Add, sum, 0, sum, t, 0, 0});
  }
  p.push_back({Opcode::Store, 0, 0, sum, 0, 0, out_addr});
  return p;
}

Program poly_eval_naive(int degree, int c_base, int x_addr, int out_addr) {
  // sum = c0 + c1*x + c2*x^2 + ... each power recomputed from scratch.
  Program p;
  const int sum = 0, x = 1, coef = 2, pw = 3, t = 4;
  p.push_back({Opcode::Load, x, 0, 0, 0, 0, x_addr});
  p.push_back({Opcode::Load, sum, 0, 0, 0, 0, c_base});  // c0
  for (int i = 1; i <= degree; ++i) {
    p.push_back({Opcode::LoadImm, pw, 0, 0, 0, 1, 0});
    for (int k = 0; k < i; ++k)
      p.push_back({Opcode::Mul, pw, 0, pw, x, 0, 0});
    p.push_back({Opcode::Load, coef, 0, 0, 0, 0, c_base + i});
    p.push_back({Opcode::Mul, t, 0, coef, pw, 0, 0});
    p.push_back({Opcode::Add, sum, 0, sum, t, 0, 0});
  }
  p.push_back({Opcode::Store, 0, 0, sum, 0, 0, out_addr});
  return p;
}

Program poly_eval_horner(int degree, int c_base, int x_addr, int out_addr) {
  // sum = (((c_n x + c_{n-1}) x + ...) x + c0).
  Program p;
  const int sum = 0, x = 1, coef = 2;
  p.push_back({Opcode::Load, x, 0, 0, 0, 0, x_addr});
  p.push_back({Opcode::Load, sum, 0, 0, 0, 0, c_base + degree});
  for (int i = degree - 1; i >= 0; --i) {
    p.push_back({Opcode::Mul, sum, 0, sum, x, 0, 0});
    p.push_back({Opcode::Load, coef, 0, 0, 0, 0, c_base + i});
    p.push_back({Opcode::Add, sum, 0, sum, coef, 0, 0});
  }
  p.push_back({Opcode::Store, 0, 0, sum, 0, 0, out_addr});
  return p;
}

}  // namespace lps::sw
