// pairing.hpp — instruction pairing / compaction for DSPs (§V, [23]).
//
// "An additional optimization applicable for this and similar processors is
// the ability to compact the instruction stream through pairing of
// instructions."  Two peepholes on the DSP core:
//   pack_loads() — adjacent loads from consecutive addresses fuse into the
//     dual-word memory access (one bus cycle instead of two);
//   fuse_mac() — the multiply-accumulate idiom (Mul t,a,b ; Add s,s,t with
//     t dead) retargets onto the accumulator datapath as a single Mac.
// Both preserve architectural results (registers that remain live, memory,
// final accumulator readback); tests verify via Machine execution.

#pragma once

#include "sw/isa.hpp"
#include "sw/power_model.hpp"

namespace lps::sw {

struct PairingResult {
  Program program;
  int loads_packed = 0;
  int macs_fused = 0;
  EnergyReport before;
  EnergyReport after;
};

/// Fuse `Load r1,[a] ; Load r2,[a+1]` into `DualLoad r1:r2,[a]` when no
/// intervening dependence blocks it.
PairingResult pack_loads(const Program& p, const SwPowerParams& pp = {});

/// Fuse the Mul/Add reduction idiom into Mac.  The running sum register is
/// detected as `Add s, s, t` immediately following `Mul t, a, b` with t
/// unused afterwards; the sequence becomes `Mac a, b` and the final value
/// of s is restored with one trailing `ReadAcc s` (+ initial ClearAcc).
/// Only applied when s starts at zero and is used purely as the reduction
/// target in the block, which the caller asserts.
PairingResult fuse_mac(const Program& p, int sum_reg,
                       const SwPowerParams& pp = {});

/// Generator: naive dot-product kernel over `n` element pairs located at
/// x_base / c_base, result stored to `out_addr` (the workload of [23]).
Program dot_product_naive(int n, int x_base, int c_base, int out_addr);

/// §V, [49]: "The choice of the algorithm used can impact the power cost
/// since it determines the runtime complexity of a program."  Two
/// algorithms for evaluating a degree-n polynomial with coefficients at
/// c_base and x preloaded in a register: the naive power-by-power method
/// (O(n^2) multiplies) and Horner's rule (O(n)).
Program poly_eval_naive(int degree, int c_base, int x_addr, int out_addr);
Program poly_eval_horner(int degree, int c_base, int x_addr, int out_addr);

}  // namespace lps::sw
