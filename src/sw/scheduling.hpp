// scheduling.hpp (sw) — power-aware instruction scheduling (§V, [40,23]).
//
// "The order of instructions can also have an impact on power since it
// determines the internal switching in the CPU.  A scheduling technique has
// been presented to reduce the estimated switching in the control path
// [40]... scheduling of instructions does have an impact in the case of a
// smaller DSP processor [23]."  The pass is a dependence-preserving greedy
// list scheduler that picks, among ready instructions, the one with the
// least circuit-state overhead from the previously issued instruction.

#pragma once

#include "sw/isa.hpp"
#include "sw/power_model.hpp"

namespace lps::sw {

struct ScheduleResult {
  Program program;
  EnergyReport before;
  EnergyReport after;
};

/// Reorder a straight-line block to minimize inter-instruction overhead.
/// The result executes identically (all dependences preserved).
ScheduleResult schedule_for_power(const Program& block,
                                  const SwPowerParams& p = {});

}  // namespace lps::sw
