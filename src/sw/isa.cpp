#include "sw/isa.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::sw {

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::LoadImm: return "ldi";
    case Opcode::Load: return "ld";
    case Opcode::Store: return "st";
    case Opcode::Move: return "mov";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Mac: return "mac";
    case Opcode::ReadAcc: return "racc";
    case Opcode::ClearAcc: return "cacc";
    case Opcode::Shift: return "shl";
    case Opcode::DualLoad: return "ld2";
  }
  return "?";
}

std::string Instr::to_string() const {
  std::string s = lps::sw::to_string(op);
  switch (op) {
    case Opcode::LoadImm:
      return s + " r" + std::to_string(rd) + ", #" + std::to_string(imm);
    case Opcode::Load:
      return s + " r" + std::to_string(rd) + ", [" + std::to_string(addr) +
             "]";
    case Opcode::DualLoad:
      return s + " r" + std::to_string(rd) + ":r" + std::to_string(rd2) +
             ", [" + std::to_string(addr) + "]";
    case Opcode::Store:
      return s + " [" + std::to_string(addr) + "], r" + std::to_string(rs1);
    case Opcode::Move:
      return s + " r" + std::to_string(rd) + ", r" + std::to_string(rs1);
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      return s + " r" + std::to_string(rd) + ", r" + std::to_string(rs1) +
             ", r" + std::to_string(rs2);
    case Opcode::Mac:
      return s + " r" + std::to_string(rs1) + ", r" + std::to_string(rs2);
    case Opcode::ReadAcc:
      return s + " r" + std::to_string(rd);
    case Opcode::Shift:
      return s + " r" + std::to_string(rd) + ", r" + std::to_string(rs1) +
             ", #" + std::to_string(imm);
    default:
      return s;
  }
}

Machine::Machine(std::size_t mem_words)
    : regs_(kNumRegs, 0), mem_(mem_words, 0) {}

void Machine::reset() {
  std::fill(regs_.begin(), regs_.end(), 0);
  acc_ = 0;
  // Memory intentionally preserved: tests preload operands with poke().
}

std::size_t Machine::run(const Program& p) {
  std::size_t cycles = 0;
  for (const Instr& i : p) {
    cycles += cycles_of(i.op);
    switch (i.op) {
      case Opcode::Nop:
        break;
      case Opcode::LoadImm:
        regs_[i.rd] = i.imm;
        break;
      case Opcode::Load:
        regs_[i.rd] = mem_.at(i.addr);
        break;
      case Opcode::DualLoad:
        regs_[i.rd] = mem_.at(i.addr);
        regs_[i.rd2] = mem_.at(i.addr + 1);
        break;
      case Opcode::Store:
        mem_.at(i.addr) = regs_[i.rs1];
        break;
      case Opcode::Move:
        regs_[i.rd] = regs_[i.rs1];
        break;
      case Opcode::Add:
        regs_[i.rd] = regs_[i.rs1] + regs_[i.rs2];
        break;
      case Opcode::Sub:
        regs_[i.rd] = regs_[i.rs1] - regs_[i.rs2];
        break;
      case Opcode::Mul:
        regs_[i.rd] = regs_[i.rs1] * regs_[i.rs2];
        break;
      case Opcode::Mac:
        acc_ += regs_[i.rs1] * regs_[i.rs2];
        break;
      case Opcode::ReadAcc:
        regs_[i.rd] = acc_;
        break;
      case Opcode::ClearAcc:
        acc_ = 0;
        break;
      case Opcode::Shift:
        regs_[i.rd] = regs_[i.rs1] << (i.imm & 63);
        break;
    }
  }
  return cycles;
}

int cycles_of(Opcode op) {
  switch (op) {
    case Opcode::Load:
    case Opcode::Store:
      return 2;
    case Opcode::DualLoad:
      return 2;
    case Opcode::Mul:
    case Opcode::Mac:
      return 2;
    default:
      return 1;
  }
}

Access access_of(const Instr& i) {
  Access a;
  constexpr int kAcc = kNumRegs;
  switch (i.op) {
    case Opcode::Nop:
      break;
    case Opcode::LoadImm:
      a.writes = {i.rd};
      break;
    case Opcode::Load:
      a.writes = {i.rd};
      a.reads_mem = true;
      a.mem_addr = i.addr;
      break;
    case Opcode::DualLoad:
      a.writes = {i.rd, i.rd2};
      a.reads_mem = true;
      a.mem_addr = i.addr;
      break;
    case Opcode::Store:
      a.reads = {i.rs1};
      a.writes_mem = true;
      a.mem_addr = i.addr;
      break;
    case Opcode::Move:
      a.reads = {i.rs1};
      a.writes = {i.rd};
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
      a.reads = {i.rs1, i.rs2};
      a.writes = {i.rd};
      break;
    case Opcode::Mac:
      a.reads = {i.rs1, i.rs2, kAcc};
      a.writes = {kAcc};
      break;
    case Opcode::ReadAcc:
      a.reads = {kAcc};
      a.writes = {i.rd};
      break;
    case Opcode::ClearAcc:
      a.writes = {kAcc};
      break;
    case Opcode::Shift:
      a.reads = {i.rs1};
      a.writes = {i.rd};
      break;
  }
  return a;
}

bool depends(const Instr& x, const Instr& y) {
  Access a = access_of(x), b = access_of(y);
  auto hits = [](const std::vector<int>& u, const std::vector<int>& v) {
    for (int i : u)
      for (int j : v)
        if (i == j) return true;
    return false;
  };
  // RAW, WAR, WAW on registers.
  if (hits(a.writes, b.reads) || hits(a.reads, b.writes) ||
      hits(a.writes, b.writes))
    return true;
  // Memory: distinct constant addresses commute; otherwise conservative.
  bool mem_conflict =
      (a.writes_mem && (b.reads_mem || b.writes_mem)) ||
      (b.writes_mem && (a.reads_mem || a.writes_mem));
  if (mem_conflict) {
    bool disjoint = a.mem_addr >= 0 && b.mem_addr >= 0 &&
                    a.mem_addr != b.mem_addr &&
                    !(x.op == Opcode::DualLoad &&
                      (b.mem_addr == x.addr + 1)) &&
                    !(y.op == Opcode::DualLoad && (a.mem_addr == y.addr + 1));
    if (!disjoint) return true;
  }
  return false;
}

}  // namespace lps::sw
