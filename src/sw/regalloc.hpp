// regalloc.hpp — register allocation as an energy lever (§V, [45]).
//
// "Register allocation can have a significant effect on the power consumed,
// since register operands are much cheaper than memory operands."  Code is
// written against unlimited virtual registers; allocate() maps them onto
// the machine's 8 physical registers with a linear-scan allocator, spilling
// the least-recently-used value to memory.  Restricting the allocator to
// fewer registers (the `num_regs` knob) reproduces the energy-vs-register-
// file-size curve.

#pragma once

#include "sw/isa.hpp"
#include "sw/power_model.hpp"

namespace lps::sw {

/// Virtual-register program: register fields index an unbounded space.
using VirtualProgram = Program;

struct AllocResult {
  Program program;        // physical-register code with spills
  int spill_loads = 0;
  int spill_stores = 0;
  EnergyReport energy;
};

/// Allocate `num_regs` physical registers (2..kNumRegs).  Spill slots start
/// at memory address `spill_base`.
AllocResult allocate(const VirtualProgram& vp, int num_regs,
                     int spill_base = 1024, const SwPowerParams& p = {});

}  // namespace lps::sw
