// power_model.hpp (sw) — instruction-level power model (§V, [46]).
//
// Tiwari, Malik & Wolfe: program energy = Σ base(i)·cycles(i)
//                                        + Σ overhead(i, i+1)
// where `base` is the average current drawn while an instruction runs and
// `overhead` is the circuit-state change cost between adjacent
// instructions.  Our synthetic tables encode the three robust findings of
// that work: memory operands cost several times register operands, the
// inter-instruction overhead depends on how different the adjacent opcodes
// are (modelled via control-word Hamming distance), and energy tracks
// cycles closely ("faster code almost always implies lower energy").

#pragma once

#include <vector>

#include "sw/isa.hpp"

namespace lps::sw {

struct SwPowerParams {
  double ma_per_cycle_base = 1.0;  // scale factor
  // Overhead cost per differing control-word bit between adjacent opcodes.
  double overhead_ma_per_bit = 0.15;
  double vdd = 5.0;
  double freq_mhz = 40.0;
};

/// Average supply current while the opcode executes (mA) — the "base cost"
/// column of an instruction-level power table.
double base_current_ma(Opcode op, const SwPowerParams& p = {});

/// Circuit-state overhead between consecutive instructions (mA·cycle).
double overhead_cost(Opcode a, Opcode b, const SwPowerParams& p = {});

struct EnergyReport {
  std::size_t cycles = 0;
  double base_macycles = 0.0;      // Σ base · cycles
  double overhead_macycles = 0.0;  // Σ inter-instruction overhead
  double total_macycles() const { return base_macycles + overhead_macycles; }
  /// Joules at the configured V_DD and clock.
  double energy_uj(const SwPowerParams& p = {}) const;
};

/// Evaluate a straight-line program (no interpretation needed — the model
/// is static, as in [46]).
EnergyReport program_energy(const Program& prog, const SwPowerParams& p = {});

}  // namespace lps::sw
