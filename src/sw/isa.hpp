// isa.hpp — a small accumulator/register DSP ISA (§V substrate).
//
// The survey's software-level techniques need a processor to measure:
// Tiwari et al. [46] built instruction-level power models for commercial
// CPUs by physical current measurement.  We cannot measure a 1995 CPU, so
// we build the closest synthetic equivalent: an 8-register, accumulator-
// style DSP core with an interpreter that produces full execution traces.
// The power model (power_model.hpp) plays the role of the measured tables:
// base cost per opcode, circuit-state overhead between adjacent opcodes,
// and a strong register-vs-memory operand asymmetry — the three effects all
// the cited software-power results rest on.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lps::sw {

enum class Opcode : std::uint8_t {
  Nop,
  LoadImm,   // rd <- imm
  Load,      // rd <- mem[addr]
  Store,     // mem[addr] <- rs1
  Move,      // rd <- rs1
  Add,       // rd <- rs1 + rs2
  Sub,       // rd <- rs1 - rs2
  Mul,       // rd <- rs1 * rs2
  Mac,       // acc <- acc + rs1 * rs2
  ReadAcc,   // rd <- acc
  ClearAcc,  // acc <- 0
  Shift,     // rd <- rs1 << imm
  DualLoad,  // rd, rd2 <- mem[addr], mem[addr+1]  (the packed DSP access)
};

std::string to_string(Opcode op);

struct Instr {
  Opcode op = Opcode::Nop;
  int rd = 0;
  int rd2 = 0;  // DualLoad second destination
  int rs1 = 0;
  int rs2 = 0;
  std::int64_t imm = 0;
  int addr = 0;

  std::string to_string() const;
};

using Program = std::vector<Instr>;

inline constexpr int kNumRegs = 8;

/// Interpreter with a word-addressed data memory.
class Machine {
 public:
  explicit Machine(std::size_t mem_words = 4096);

  void reset();
  std::int64_t reg(int r) const { return regs_[r]; }
  std::int64_t acc() const { return acc_; }
  std::int64_t mem(int a) const { return mem_[a]; }
  void poke(int a, std::int64_t v) { mem_[a] = v; }

  /// Execute straight-line code; returns number of cycles (per-opcode
  /// latencies from cycles_of()).
  std::size_t run(const Program& p);

 private:
  std::vector<std::int64_t> regs_;
  std::int64_t acc_ = 0;
  std::vector<std::int64_t> mem_;
};

/// Architectural latency of an instruction (cycles).
int cycles_of(Opcode op);

/// Registers read / written by an instruction (dependence analysis for the
/// scheduler).  Memory is treated as a single location unless addresses are
/// distinct constants.
struct Access {
  std::vector<int> reads;   // register numbers; acc = kNumRegs
  std::vector<int> writes;
  bool reads_mem = false;
  bool writes_mem = false;
  int mem_addr = -1;  // constant address (all our programs use constants)
};
Access access_of(const Instr& i);

/// True when `b` may not move above `a` (data or memory dependence).
bool depends(const Instr& a, const Instr& b);

}  // namespace lps::sw
