#include "sw/scheduling.hpp"

#include <vector>

namespace lps::sw {

ScheduleResult schedule_for_power(const Program& block,
                                  const SwPowerParams& p) {
  ScheduleResult r;
  r.before = program_energy(block, p);

  std::size_t n = block.size();
  // Dependence edges i -> j (i before j, i < j in original order).
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<int> pending(n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (depends(block[i], block[j])) {
        succs[i].push_back(j);
        pending[j] += 1;
      }

  std::vector<bool> emitted(n, false);
  Opcode prev = Opcode::Nop;
  bool have_prev = false;
  for (std::size_t step = 0; step < n; ++step) {
    // Ready set: all predecessors emitted.
    double best_cost = 1e30;
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (emitted[i] || pending[i] > 0) continue;
      double c = have_prev ? overhead_cost(prev, block[i].op, p) : 0.0;
      if (c < best_cost - 1e-12) {
        best_cost = c;
        best = i;
      }
    }
    emitted[best] = true;
    for (std::size_t s : succs[best]) pending[s] -= 1;
    r.program.push_back(block[best]);
    prev = block[best].op;
    have_prev = true;
  }
  r.after = program_energy(r.program, p);
  return r;
}

}  // namespace lps::sw
