// sizing.hpp — slack-based transistor sizing under a delay constraint.
//
// §II-B: "A typical approach ... is to compute the slack at each gate in the
// circuit ... Subcircuits with slacks greater than zero are processed, and
// the sizes of the transistors reduced until the slack becomes zero, or the
// transistors are all minimum size."  (Variants: Tan & Allen [42], Bahar et
// al. [3].)
//
// Delay model: gate delay d(n) = d0 * (alpha + C_load(n) / (size(n) * c0)),
// i.e. bigger gates drive their load faster but present more input
// capacitance to their fanins — the coupled tradeoff the survey describes.
// The pass starts from a uniformly-sized circuit, then greedily downsizes
// the gate with the best power-gain-per-slack-consumed ratio while the
// critical delay stays within `delay_budget`.

#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_model.hpp"

namespace lps::circuit {

struct SizingParams {
  double d0 = 1.0;        // intrinsic delay scale
  double alpha = 0.5;     // intrinsic (unloaded) delay fraction
  double c0_ff = 20.0;    // drive capability per unit size, fF per d0
  double min_size = 1.0;
  double max_size = 8.0;
  double step = 0.5;      // downsizing granularity
  // Delay budget as a multiple of the starting circuit's critical delay;
  // 1.0 = keep the starting critical delay.
  double delay_budget_factor = 1.1;
  // true: begin from a uniformly max-sized (fastest) circuit — the classic
  // "size for speed, then recover power" formulation.  false: keep the
  // current sizes and only downsize where slack allows (in-place cleanup).
  bool start_from_max = true;
};

struct SizingResult {
  double delay_before = 0.0;  // critical delay at uniform max size
  double delay_after = 0.0;
  double delay_budget = 0.0;
  double cap_before_ff = 0.0;  // total switched-capacitance proxy
  double cap_after_ff = 0.0;
  std::vector<double> sizes;  // final per-node sizes
  int downsizing_moves = 0;
};

/// Continuous timing with the sizing delay model (uses node sizes in `net`).
std::vector<double> sized_arrival_times(const Netlist& net,
                                        const power::PowerParams& pp,
                                        const SizingParams& sp);
double sized_critical_delay(const Netlist& net, const power::PowerParams& pp,
                            const SizingParams& sp);

/// Run the slack-based downsizing loop.  Mutates Node::size in `net`.
/// `toggles_per_cycle` weighs capacitance by activity so the power gain of a
/// move is activity-aware (downsizing a busy gate helps more).
SizingResult size_for_power(Netlist& net,
                            const std::vector<double>& toggles_per_cycle,
                            const power::PowerParams& pp = {},
                            const SizingParams& sp = {});

}  // namespace lps::circuit
