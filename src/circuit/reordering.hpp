// reordering.hpp — transistor reordering for power and/or delay (§II-A).
//
// "Given g = a·b·c, any serial ordering of a, b and c can be chosen in the
// N part of a CMOS gate implementing g.  It is well known that late arriving
// signals should be placed closer to the output to minimize gate propagation
// delay... Ordering of gate inputs will affect both power and delay."
// Implements the exhaustive/greedy search of Prasad & Roy [32] and
// Tan & Allen [42] over series-stack orderings.

#pragma once

#include <span>

#include "circuit/complex_gate.hpp"

namespace lps::circuit {

enum class Objective { Power, Delay, PowerDelayProduct };

struct ReorderResult {
  SwitchNet best_pulldown;
  double energy_before_fj = 0.0;
  double energy_after_fj = 0.0;
  double delay_before = 0.0;
  double delay_after = 0.0;
};

/// Search over orderings of every series stack in the gate (exhaustive while
/// the variant count stays under `max_variants`, then greedy prefix search).
/// `one_prob[i]` is P(input i = 1); `arrival[i]` its arrival time.
ReorderResult reorder(const ComplexGate& gate,
                      std::span<const double> one_prob,
                      std::span<const double> arrival, Objective objective,
                      const GateElectrical& e = {},
                      std::size_t max_variants = 20000);

}  // namespace lps::circuit
