#include "circuit/complex_gate.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace lps::circuit {

SwitchNet SwitchNet::leaf(int input) {
  SwitchNet s;
  s.kind = Kind::Leaf;
  s.input = input;
  return s;
}

SwitchNet SwitchNet::series(std::vector<SwitchNet> kids) {
  SwitchNet s;
  s.kind = Kind::Series;
  s.kids = std::move(kids);
  return s;
}

SwitchNet SwitchNet::parallel(std::vector<SwitchNet> kids) {
  SwitchNet s;
  s.kind = Kind::Parallel;
  s.kids = std::move(kids);
  return s;
}

int SwitchNet::num_transistors() const {
  if (kind == Kind::Leaf) return 1;
  int n = 0;
  for (const auto& k : kids) n += k.num_transistors();
  return n;
}

bool SwitchNet::conducts(std::span<const bool> inputs) const {
  switch (kind) {
    case Kind::Leaf:
      return inputs[input];
    case Kind::Series:
      for (const auto& k : kids)
        if (!k.conducts(inputs)) return false;
      return true;
    case Kind::Parallel:
      for (const auto& k : kids)
        if (k.conducts(inputs)) return true;
      return false;
  }
  return false;
}

std::string SwitchNet::to_string() const {
  switch (kind) {
    case Kind::Leaf:
      return std::string(1, static_cast<char>('a' + input));
    case Kind::Series: {
      std::string s;
      for (const auto& k : kids) {
        bool paren = k.kind == Kind::Parallel;
        if (paren) s += '(';
        s += k.to_string();
        if (paren) s += ')';
      }
      return s;
    }
    case Kind::Parallel: {
      std::string s;
      for (std::size_t i = 0; i < kids.size(); ++i) {
        if (i) s += '+';
        s += kids[i].to_string();
      }
      return s;
    }
  }
  return "?";
}

ComplexGate::ComplexGate(int num_inputs, SwitchNet pulldown)
    : num_inputs_(num_inputs), pulldown_(std::move(pulldown)) {
  build(pulldown_, 0, 1);
}

void ComplexGate::build(const SwitchNet& net, int top, int bottom) {
  switch (net.kind) {
    case SwitchNet::Kind::Leaf:
      transistors_.push_back({net.input, top, bottom});
      break;
    case SwitchNet::Kind::Series: {
      int prev = top;
      for (std::size_t i = 0; i < net.kids.size(); ++i) {
        int next = (i + 1 == net.kids.size()) ? bottom : num_nodes_++;
        build(net.kids[i], prev, next);
        prev = next;
      }
      break;
    }
    case SwitchNet::Kind::Parallel:
      for (const auto& k : net.kids) build(k, top, bottom);
      break;
  }
}

bool ComplexGate::eval(std::span<const bool> inputs) const {
  return !pulldown_.conducts(inputs);  // static CMOS inverting gate
}

int ComplexGate::num_internal_nodes() const { return num_nodes_ - 2; }

namespace {

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(int a, int b) { parent[find(a)] = find(b); }
};

}  // namespace

double ComplexGate::average_energy_fj(std::span<const double> one_prob,
                                      const GateElectrical& e) const {
  if (static_cast<int>(one_prob.size()) != num_inputs_)
    throw std::invalid_argument("average_energy_fj: probability count");
  // Monte Carlo over an input sequence with charge retention; deterministic
  // seed so results are reproducible.
  constexpr int kSteps = 20000;
  std::mt19937_64 rng(0x5EEDFACE);
  std::vector<char> charge(num_nodes_, 1);  // start fully charged
  std::vector<bool> v(num_inputs_, false);
  double energy_ff_v2 = 0.0;  // in fF (times V^2 applied at the end)
  auto cap_of = [&](int node) {
    return node == 0 ? e.c_output_ff : (node == 1 ? 0.0 : e.c_internal_ff);
  };
  for (int step = 0; step < kSteps; ++step) {
    for (int i = 0; i < num_inputs_; ++i)
      v[i] = (rng() & 0xFFFF) <
             static_cast<std::uint64_t>(one_prob[i] * 65536.0);
    UnionFind uf(num_nodes_);
    for (const auto& t : transistors_)
      if (v[t.input]) uf.unite(t.node_a, t.node_b);
    int gnd_root = uf.find(1);
    int out_root = uf.find(0);
    bool out_high = gnd_root != out_root;  // pull-up wins when PDN is off
    // Group value: GND group -> 0; output group (when high) -> 1; floating
    // groups retain charge (any charged member charges the group).
    std::vector<char> group_val(num_nodes_, -1);
    for (int n = 0; n < num_nodes_; ++n) {
      int r = uf.find(n);
      if (r == gnd_root) {
        group_val[r] = 0;
      } else if (r == out_root && out_high) {
        group_val[r] = 1;
      } else if (charge[n]) {
        group_val[r] = std::max<char>(group_val[r], 1);
      } else if (group_val[r] < 0) {
        group_val[r] = 0;
      }
    }
    for (int n = 0; n < num_nodes_; ++n) {
      char nv = group_val[uf.find(n)];
      if (nv < 0) nv = charge[n];
      if (nv == 1 && !charge[n]) energy_ff_v2 += cap_of(n);
      charge[n] = nv;
    }
  }
  return energy_ff_v2 * e.vdd * e.vdd / static_cast<double>(kSteps);
}

namespace {

// Enumerate root-to-GND paths as input sequences (top first).
void paths_of(const SwitchNet& net, std::vector<std::vector<int>>& acc) {
  switch (net.kind) {
    case SwitchNet::Kind::Leaf:
      acc.push_back({net.input});
      break;
    case SwitchNet::Kind::Series: {
      std::vector<std::vector<int>> result{{}};
      for (const auto& k : net.kids) {
        std::vector<std::vector<int>> sub;
        paths_of(k, sub);
        std::vector<std::vector<int>> next;
        for (const auto& a : result)
          for (const auto& b : sub) {
            auto c = a;
            c.insert(c.end(), b.begin(), b.end());
            next.push_back(std::move(c));
            if (next.size() > 4096) return;  // guard
          }
        result = std::move(next);
      }
      for (auto& p : result) acc.push_back(std::move(p));
      break;
    }
    case SwitchNet::Kind::Parallel:
      for (const auto& k : net.kids) paths_of(k, acc);
      break;
  }
}

}  // namespace

double ComplexGate::worst_delay(std::span<const double> arrival,
                                const GateElectrical& e) const {
  std::vector<std::vector<int>> paths;
  paths_of(pulldown_, paths);
  double worst = 0.0;
  for (const auto& p : paths) {
    int k = static_cast<int>(p.size());
    // Nodes strictly below the latest-arriving transistor pre-discharge
    // while the path waits for it; when it finally conducts, the residual
    // charge (output + internals above it) drains through the full chain.
    // The worst case is therefore set by the bottom-most position holding
    // the maximum arrival time.
    double a_max = 0.0;
    for (int q = 0; q < k; ++q) a_max = std::max(a_max, arrival[p[q]]);
    int q_late = 1;
    for (int q = 1; q <= k; ++q)
      if (arrival[p[q - 1]] >= a_max - 1e-12) q_late = q;
    double elmore = 0.0;
    for (int j = 0; j < q_late; ++j) {
      double c = (j == 0) ? e.c_output_ff : e.c_internal_ff;
      elmore += c * e.r_transistor * static_cast<double>(k - j);
    }
    worst = std::max(worst, a_max + elmore);
  }
  return worst;
}

}  // namespace lps::circuit
