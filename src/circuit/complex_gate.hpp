// complex_gate.hpp — transistor-level model of static CMOS complex gates.
//
// §II-A: "In the design of complex gates, e.g., f = (a+b)·c, choices
// regarding the placement of individual transistors in the gate can be
// made... The average power dissipated is dependent on the transition
// probabilities of the gate inputs and the internal node capacitances."
//
// We model the pull-down network as a series/parallel switch tree (the
// pull-up is its dual) and evaluate it with a conservative switch-level
// simulator featuring charge retention on floating internal nodes.  Energy
// is charged per 0->1 event on each electrical node (E = C·V²), which makes
// the ordering-dependent internal-node power of [32,42] directly measurable:
// enumerating all input-vector pairs weighted by input probabilities yields
// the exact average energy per cycle for gates of practical width.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lps::circuit {

/// Series/parallel switch network.  Leaves are gate inputs driving one NMOS
/// transistor each (the PMOS dual is implied).
struct SwitchNet {
  enum class Kind { Leaf, Series, Parallel };
  Kind kind = Kind::Leaf;
  int input = 0;                // for Leaf
  std::vector<SwitchNet> kids;  // for Series/Parallel

  static SwitchNet leaf(int input);
  static SwitchNet series(std::vector<SwitchNet> kids);
  static SwitchNet parallel(std::vector<SwitchNet> kids);

  int num_transistors() const;
  /// Does the network conduct under this input assignment?
  bool conducts(std::span<const bool> inputs) const;
  std::string to_string() const;  // e.g. "(a+b)c" with letters a..z
};

struct GateElectrical {
  double c_internal_ff = 6.0;  // diffusion capacitance per internal node
  double c_output_ff = 20.0;   // load at the gate output
  double r_transistor = 1.0;   // per-transistor on-resistance (delay units)
  double vdd = 5.0;
};

/// A complex CMOS gate: output = NOT(pulldown conducts).
class ComplexGate {
 public:
  ComplexGate(int num_inputs, SwitchNet pulldown);

  int num_inputs() const { return num_inputs_; }
  const SwitchNet& pulldown() const { return pulldown_; }

  bool eval(std::span<const bool> inputs) const;  // logic value of output

  /// Exact average energy per input transition (fJ), enumerating all
  /// (previous, next) input-vector pairs weighted by per-input one-
  /// probabilities (temporal independence).  O(4^k); use for k <= 8.
  double average_energy_fj(std::span<const double> one_prob,
                           const GateElectrical& e = {}) const;

  /// Worst-case output discharge delay via Elmore on the deepest conducting
  /// series path, given per-input arrival times.  Late inputs placed near
  /// the output yield smaller values (the classic delay rule of §II-A).
  double worst_delay(std::span<const double> arrival,
                     const GateElectrical& e = {}) const;

  /// Electrical node count of the pull-down network (excluding output/GND).
  int num_internal_nodes() const;

 private:
  friend class SwitchSim;
  // Flattened transistor list: edges between electrical nodes.
  struct Transistor {
    int input;
    int node_a, node_b;
  };
  void build(const SwitchNet& net, int top, int bottom);

  int num_inputs_;
  SwitchNet pulldown_;
  int num_nodes_ = 2;  // node 0 = output, node 1 = GND, 2.. internal
  std::vector<Transistor> transistors_;
};

}  // namespace lps::circuit
