#include "circuit/sizing.hpp"

#include <algorithm>
#include <cmath>

namespace lps::circuit {

namespace {

double gate_delay(const Netlist& net, NodeId id, const power::PowerParams& pp,
                  const SizingParams& sp) {
  const Node& n = net.node(id);
  if (is_source(n.type) || n.type == GateType::Dff) return 0.0;
  double c_ff = power::node_capacitance(net, id, pp) * 1e15;
  return sp.d0 * (sp.alpha + c_ff / (n.size * sp.c0_ff));
}

double activity_cap_ff(const Netlist& net,
                       const std::vector<double>& toggles,
                       const power::PowerParams& pp) {
  double t = 0.0;
  for (NodeId id = 0; id < net.size(); ++id) {
    if (net.is_dead(id)) continue;
    t += power::node_capacitance(net, id, pp) * 1e15 * toggles[id];
  }
  return t;
}

}  // namespace

std::vector<double> sized_arrival_times(const Netlist& net,
                                        const power::PowerParams& pp,
                                        const SizingParams& sp) {
  std::vector<double> at(net.size(), 0.0);
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (is_source(n.type) || n.type == GateType::Dff) continue;
    double m = 0.0;
    for (NodeId f : n.fanins) m = std::max(m, at[f]);
    at[id] = m + gate_delay(net, id, pp, sp);
  }
  return at;
}

double sized_critical_delay(const Netlist& net, const power::PowerParams& pp,
                            const SizingParams& sp) {
  auto at = sized_arrival_times(net, pp, sp);
  double m = 0.0;
  for (NodeId o : net.outputs()) m = std::max(m, at[o]);
  for (NodeId d : net.dffs()) m = std::max(m, at[net.node(d).fanins[0]]);
  return m;
}

SizingResult size_for_power(Netlist& net,
                            const std::vector<double>& toggles,
                            const power::PowerParams& pp,
                            const SizingParams& sp) {
  SizingResult r;
  if (sp.start_from_max) {
    // Start from the fastest (uniform max size) implementation.
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      Node& n = net.node(id);
      if (!is_source(n.type) && n.type != GateType::Dff) n.size = sp.max_size;
    }
  }
  r.delay_before = sized_critical_delay(net, pp, sp);
  r.delay_budget = r.delay_before * sp.delay_budget_factor;
  r.cap_before_ff = activity_cap_ff(net, toggles, pp);

  // Greedy: repeatedly shrink the gate whose downsizing reduces the
  // activity-weighted capacitance the most; if the move breaks the delay
  // budget, undo it and freeze the gate.  One full timing pass per move.
  std::vector<bool> frozen(net.size(), false);
  for (;;) {
    double best_gain = 0.0;
    NodeId best = kNoNode;
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id) || frozen[id]) continue;
      const Node& n = net.node(id);
      if (is_source(n.type) || n.type == GateType::Dff) continue;
      if (n.size <= sp.min_size + 1e-9) continue;
      // Gain: reduced input capacitance presented to the fanins, weighted
      // by how often those fanins toggle, plus reduced self capacitance.
      double gain = pp.cself_ff * sp.step * toggles[id];
      for (NodeId f : n.fanins) gain += pp.cin_ff * sp.step * toggles[f];
      if (gain > best_gain) {
        best_gain = gain;
        best = id;
      }
    }
    if (best == kNoNode) break;
    Node& n = net.node(best);
    double old = n.size;
    n.size = std::max(sp.min_size, n.size - sp.step);
    if (sized_critical_delay(net, pp, sp) > r.delay_budget) {
      n.size = old;
      frozen[best] = true;
    } else {
      ++r.downsizing_moves;
    }
  }

  r.delay_after = sized_critical_delay(net, pp, sp);
  r.cap_after_ff = activity_cap_ff(net, toggles, pp);
  r.sizes.assign(net.size(), 1.0);
  for (NodeId id = 0; id < net.size(); ++id)
    if (!net.is_dead(id)) r.sizes[id] = net.node(id).size;
  return r;
}

}  // namespace lps::circuit
