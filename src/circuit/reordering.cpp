#include "circuit/reordering.hpp"

#include <algorithm>

namespace lps::circuit {

namespace {

// Generate all variants of a switch net obtained by permuting the child
// order of every Series node.  Bounded by `limit`.
void variants_of(const SwitchNet& net, std::vector<SwitchNet>& out,
                 std::size_t limit) {
  switch (net.kind) {
    case SwitchNet::Kind::Leaf:
      out.push_back(net);
      return;
    case SwitchNet::Kind::Parallel:
    case SwitchNet::Kind::Series: {
      // Variants of each child first.
      std::vector<std::vector<SwitchNet>> kid_vars(net.kids.size());
      for (std::size_t i = 0; i < net.kids.size(); ++i)
        variants_of(net.kids[i], kid_vars[i], limit);
      // Cartesian product of child variants.
      std::vector<std::vector<SwitchNet>> combos{{}};
      for (const auto& kv : kid_vars) {
        std::vector<std::vector<SwitchNet>> next;
        for (const auto& c : combos)
          for (const auto& v : kv) {
            auto c2 = c;
            c2.push_back(v);
            next.push_back(std::move(c2));
            if (next.size() > limit) break;
          }
        combos = std::move(next);
        if (combos.size() > limit) combos.resize(limit);
      }
      for (auto& kids : combos) {
        if (net.kind == SwitchNet::Kind::Parallel) {
          out.push_back(SwitchNet::parallel(kids));
          continue;
        }
        // Series: additionally permute the order.
        std::vector<std::size_t> idx(kids.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        std::sort(idx.begin(), idx.end());
        do {
          std::vector<SwitchNet> ordered;
          for (auto i : idx) ordered.push_back(kids[i]);
          out.push_back(SwitchNet::series(std::move(ordered)));
          if (out.size() > limit) return;
        } while (std::next_permutation(idx.begin(), idx.end()));
      }
      return;
    }
  }
}

double score(Objective obj, double energy, double delay) {
  switch (obj) {
    case Objective::Power:
      return energy;
    case Objective::Delay:
      return delay;
    case Objective::PowerDelayProduct:
      return energy * delay;
  }
  return energy;
}

}  // namespace

ReorderResult reorder(const ComplexGate& gate,
                      std::span<const double> one_prob,
                      std::span<const double> arrival, Objective objective,
                      const GateElectrical& e, std::size_t max_variants) {
  ReorderResult r;
  r.energy_before_fj = gate.average_energy_fj(one_prob, e);
  r.delay_before = gate.worst_delay(arrival, e);
  r.best_pulldown = gate.pulldown();

  std::vector<SwitchNet> vars;
  variants_of(gate.pulldown(), vars, max_variants);

  double best = score(objective, r.energy_before_fj, r.delay_before);
  r.energy_after_fj = r.energy_before_fj;
  r.delay_after = r.delay_before;
  for (auto& v : vars) {
    ComplexGate g(gate.num_inputs(), v);
    double energy = g.average_energy_fj(one_prob, e);
    double delay = g.worst_delay(arrival, e);
    double s = score(objective, energy, delay);
    if (s < best) {
      best = s;
      r.best_pulldown = v;
      r.energy_after_fj = energy;
      r.delay_after = delay;
    }
  }
  return r;
}

}  // namespace lps::circuit
