// env.hpp — hardened environment-knob parsing.
//
// Every process knob in this library (LPS_THREADS, LPS_SIM_COMPILED,
// LPS_SIM_BLOCK, and the service's LPS_SOAK_MS) used to be parsed ad hoc at
// its sampling site, and malformed values were swallowed silently: "LPS_
// THREADS=8x" or "LPS_SIM_BLOCK=banana" behaved exactly like the variable
// being unset, which is the worst failure mode for an operator debugging a
// misconfigured daemon.  This module centralizes the parsing with the same
// contract the file parsers follow: a malformed value is *rejected with a
// positioned diagnostic* (the SourceLoc names the variable and the column
// of the first offending character) and the knob falls back to its
// documented default — never to a half-parsed value.
//
// The sampling sites print the diagnostic to stderr once (knobs are sampled
// once per process; see the caching contract in core/parallel.hpp) and keep
// running: a bad knob must never take the process down, only inform.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/diag.hpp"

namespace lps::core {

/// Outcome of parsing one environment knob.
struct EnvParse {
  long value = 0;       // parsed value, or the default on failure
  bool present = false; // variable was set at all
  bool ok = true;       // parsed cleanly and in range (true when absent)
  diag::Status status;  // positioned diagnostic when !ok
};

/// Parse decimal-integer text for knob `name` into [min_v, max_v].  `text`
/// may be null (variable unset: present=false, value=def).  Rejected forms
/// — empty text, non-digit characters, out-of-range values — return
/// ok=false, value=def and a diagnostic positioned at the offending column
/// (loc.file = "$<name>", col 1-based into the value text).
EnvParse parse_env_long(const char* name, const char* text, long min_v,
                        long max_v, long def);

/// Parse boolean text for knob `name`: accepted spellings are "0"/"1" and
/// "false"/"true" (exactly; no whitespace, no case folding — a knob is not
/// a prose field).  Anything else is rejected with a positioned diagnostic
/// and falls back to `def`.
EnvParse parse_env_bool(const char* name, const char* text, bool def);

/// Parse an enumerated-choice knob (e.g. LPS_SIM_WIDTH=scalar|avx2|avx512|
/// auto): `text` must exactly match one of the `n_choices` strings in
/// `choices` (no whitespace, no case folding), and the parsed value is the
/// matching index.  Anything else is rejected with a positioned diagnostic
/// listing the accepted spellings and falls back to `def_index`.
EnvParse parse_env_choice(const char* name, const char* text,
                          const char* const* choices, std::size_t n_choices,
                          std::size_t def_index);

/// getenv + parse + report: reads the variable, and when the value is
/// malformed prints the diagnostic to stderr (exactly once per call) before
/// returning the default.  The sampling sites use these; tests exercise the
/// pure parse functions above.
long env_long_or(const char* name, long min_v, long max_v, long def);
bool env_bool_or(const char* name, bool def);
std::size_t env_choice_or(const char* name, const char* const* choices,
                          std::size_t n_choices, std::size_t def_index);

}  // namespace lps::core
