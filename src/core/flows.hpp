// flows.hpp — end-to-end low-power flows combining the surveyed techniques.
//
// The survey's thesis is that savings compose across abstraction levels.
// These flows chain the library's passes the way a 1995 CAD system would:
//   combinational: strash -> don't-care opt -> resynthesis -> datapath
//   rewriting -> hybrid BDD synthesis -> path balancing -> sizing,
//   sequential (FSM): low-power encoding -> synthesis -> self-loop clock
//   gating, with Eqn. (1) power measured between every stage.

#pragma once

#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "netlist/netlist.hpp"
#include "power/activity.hpp"
#include "seq/stg.hpp"

namespace lps::core {

struct StageReport {
  std::string stage;
  double power_w = 0.0;
  double glitch_fraction = 0.0;
  std::size_t gates = 0;
  int delay = 0;
  /// Outcome of this stage: "kept" (improved or baseline), "reverted"
  /// (legal rewrite that raised power — backed out), or "failed" (the
  /// transform threw or broke the circuit — rolled back; see note).
  std::string status = "kept";
  std::string note;  // diagnostic text when status == "failed"
  /// Incremental-estimate instrumentation (use_incremental_power only):
  /// nodes re-simulated for this stage's estimate vs. what a full
  /// re-analysis evaluates.  Equal on full fallbacks (e.g. Timed mode);
  /// both 0 when the stage failed before estimation or on the legacy path.
  std::size_t resim_nodes = 0;
  std::size_t full_nodes = 0;
  /// Journal epochs actually rewound while this stage ran, measured from
  /// Netlist::undo_rollbacks() — not inferred from the status.  Includes
  /// rollbacks a transform performs internally (e.g. the datapath engine
  /// backing out losing candidates), plus the stage-epoch rollback itself
  /// for reverted/failed stages.  Summed over a flow this equals the
  /// journal's own counter, which is what the accounting tests audit.
  std::size_t rollbacks = 0;
};

struct FlowOptions {
  std::size_t sim_vectors = 2048;
  std::uint64_t seed = 5;
  bool run_dontcare = true;
  /// Power-driven datapath rewriting (logicopt/rewrite/): exact structural
  /// rules scored one candidate at a time through a private cone-scoped
  /// power oracle.  Runs after resynthesis, before balancing.
  bool run_datapath = true;
  /// Hybrid BDD→MUX extraction (logicopt/bdd_synth.hpp): per-cone BDDs on
  /// the complement-edge manager, activity-weighted sifting, kept per cone
  /// only when the MUX form beats the current structure on power.  Runs
  /// after datapath rewriting, before balancing.
  bool run_bdd_synth = true;
  bool run_balance = true;
  bool run_sizing = true;
  /// Activity source for the between-stage estimates.  Timed (default)
  /// keeps the glitch-aware reports the survey's Eqn. (1) story is told
  /// with; ZeroDelay trades glitch visibility for cone-scoped incremental
  /// re-estimation (power/incremental.hpp) inside the stage loop.
  power::ActivityMode estimate_mode = power::ActivityMode::Timed;
  /// Route between-stage estimates through IncrementalAnalyzer.  The
  /// result is bit-identical to per-stage full power::analyze runs (cone
  /// updates in ZeroDelay mode; Timed mode falls back to full runs,
  /// recorded in power.inc.* metrics).  false = legacy per-stage full
  /// analysis, kept for differential testing — mirroring
  /// PassManager::Options::use_undo_log.
  bool use_incremental_power = true;
  /// Candidate-scoring worker threads for the optimization engines
  /// (logicopt/speculate.hpp) — routed into the datapath rewrite and
  /// window-resynthesis stages.  Speculative scoring is bit-identical to
  /// sequential at any value, so this only changes wall-clock.  0 = the
  /// LPS_OPT_WORKERS environment default; 1 = sequential.
  int opt_workers = 0;
  power::PowerParams params;
  /// Optional cooperative cancellation token (not owned; must outlive the
  /// flow).  Threaded into every between-stage power estimate; when it
  /// fires, the in-flight stage is rolled back (the journal restores the
  /// pre-stage circuit, the estimator restores its caches) and the flow
  /// aborts with core::CancelledError.  Cancellation never yields a
  /// half-applied stage.
  const core::CancelToken* cancel = nullptr;
};

struct FlowResult {
  Netlist circuit;
  std::vector<StageReport> stages;  // first entry = input circuit

  /// The last stage whose transform was kept (reverted/failed tails report
  /// the power of the circuit they *rolled back to*, not of the kept
  /// result, so reading stages.back() unconditionally misattributes the
  /// saving when the flow ends on a losing stage).  Returns nullptr when no
  /// stage was kept.
  const StageReport* last_kept_stage() const {
    for (auto it = stages.rbegin(); it != stages.rend(); ++it)
      if (it->status == "kept") return &*it;
    return nullptr;
  }

  /// Fractional power saving of the final kept circuit vs the input stage.
  /// 0 when there are no stages, no kept stage, or a zero-power baseline.
  double saving() const {
    const StageReport* last = last_kept_stage();
    if (stages.size() < 2 || stages.front().power_w <= 0 || !last) return 0.0;
    return 1.0 - last->power_w / stages.front().power_w;
  }
};

/// Combinational low-power flow; function verified stage by stage.
FlowResult optimize_combinational(const Netlist& input,
                                  const FlowOptions& opt = {});

/// Sequential low-power flow: the combinational stage ladder (strash ->
/// don't-care -> resynthesis -> datapath -> bdd_synth -> balancing ->
/// sizing) run on a netlist with
/// registers, plus a final hold-on-self-loop gating stage
/// (seq::gate_fsm_self_loops).  Register-crossing transforms make this the
/// flow that exercises Dff-crossing incremental re-estimation.
FlowResult optimize_sequential(const Netlist& input,
                               const FlowOptions& opt = {});

struct FsmFlowResult {
  Netlist circuit;
  double wswitch_binary = 0.0;    // weighted FF switching, binary codes
  double wswitch_lowpower = 0.0;  // after annealing
  double power_binary_w = 0.0;    // measured on synthesized logic
  double power_lowpower_w = 0.0;
  double power_gated_w = 0.0;     // low-power encoding + self-loop gating
  double clock_saving_fraction = 0.0;  // from self-loop gating
};

/// FSM flow: encode (binary vs annealed), synthesize, self-loop gate.
FsmFlowResult optimize_fsm(const seq::Stg& stg, const FlowOptions& opt = {});

}  // namespace lps::core
