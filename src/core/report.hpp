// report.hpp — aligned-table reporting for experiments and examples.
//
// Every bench binary prints paper-style tables; this keeps the formatting
// in one place (fixed-width columns, stream-agnostic, no I/O surprises).

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "power/power_model.hpp"

namespace lps::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& row(std::vector<std::string> cells);
  /// Convenience: converts doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One-line rendering of an Eqn. (1) breakdown in microwatts.
std::string power_line(const power::PowerBreakdown& b);

}  // namespace lps::core
