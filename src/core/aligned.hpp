// aligned.hpp — cache-line-aligned 64-bit word storage.
//
// The compiled-tape kernels (sim/kernels_impl.hpp) read and write node
// value blocks with 256/512-bit vector loads.  std::vector<std::uint64_t>
// only guarantees 8/16-byte alignment, so a 512-bit access of a block that
// straddles a cache line is split into two line transactions — measurable
// on the streaming replay loop, and exactly the failure the unaligned
// load/store intrinsics hide.  AlignedWords is the value-array container
// the simulation scratch uses instead: every allocation starts on a
// 64-byte boundary and is padded to a whole number of cache lines, so a
// vector access of any in-range block touches the minimum number of lines
// and never faults past the allocation.
//
// Alignment here is a performance property, not a correctness one: the
// kernels use unaligned intrinsics throughout, so a plain Frame
// (std::vector) stays a valid value array for the block == 1 paths.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

namespace lps::core {

/// std::vector<std::uint64_t> replacement whose data() is 64-byte aligned.
/// Deliberately minimal: the simulation scratch only needs assign / resize
/// / indexing.  Grows like a vector (capacity doubling) so repeated
/// assign() calls of the same size — the per-chunk reuse pattern in the
/// Monte Carlo drivers — allocate exactly once.
class AlignedWords {
 public:
  static constexpr std::size_t kAlign = 64;  // cache line / AVX-512 vector

  AlignedWords() = default;
  explicit AlignedWords(std::size_t n, std::uint64_t v = 0) { assign(n, v); }
  ~AlignedWords() { std::free(data_); }

  AlignedWords(AlignedWords&& o) noexcept
      : data_(std::exchange(o.data_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        cap_(std::exchange(o.cap_, 0)) {}
  AlignedWords& operator=(AlignedWords&& o) noexcept {
    if (this != &o) {
      std::free(data_);
      data_ = std::exchange(o.data_, nullptr);
      size_ = std::exchange(o.size_, 0);
      cap_ = std::exchange(o.cap_, 0);
    }
    return *this;
  }
  AlignedWords(const AlignedWords&) = delete;
  AlignedWords& operator=(const AlignedWords&) = delete;

  std::uint64_t* data() { return data_; }
  const std::uint64_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::uint64_t& operator[](std::size_t i) { return data_[i]; }
  const std::uint64_t& operator[](std::size_t i) const { return data_[i]; }

  std::uint64_t* begin() { return data_; }
  std::uint64_t* end() { return data_ + size_; }
  const std::uint64_t* begin() const { return data_; }
  const std::uint64_t* end() const { return data_ + size_; }

  /// Resize to `n` words, all set to `v` (vector::assign semantics).
  void assign(std::size_t n, std::uint64_t v) {
    reserve(n);
    size_ = n;
    std::fill(data_, data_ + n, v);
  }

  /// Resize to `n` words; new words (if growing) are zero, surviving words
  /// keep their values.
  void resize(std::size_t n) {
    std::size_t old = size_;
    reserve(n);
    size_ = n;
    if (n > old) std::fill(data_ + old, data_ + n, 0);
  }

  /// Ensure capacity for `n` words without changing size.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t cap = std::max(n, cap_ * 2);
    // aligned_alloc requires the byte size to be a multiple of the
    // alignment; round up to whole cache lines (this is also what keeps a
    // full-width vector access of the last block inside the allocation).
    std::size_t bytes = (cap * sizeof(std::uint64_t) + kAlign - 1) &
                        ~(kAlign - 1);
    auto* p = static_cast<std::uint64_t*>(std::aligned_alloc(kAlign, bytes));
    if (p == nullptr) throw std::bad_alloc();
    if (size_ != 0) std::copy(data_, data_ + size_, p);
    std::free(data_);
    data_ = p;
    cap_ = bytes / sizeof(std::uint64_t);
  }

 private:
  std::uint64_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace lps::core
