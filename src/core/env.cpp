#include "core/env.hpp"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace lps::core {

namespace {

diag::SourceLoc knob_loc(const char* name, int col) {
  diag::SourceLoc loc;
  loc.file = std::string("$") + name;
  loc.line = 1;
  loc.col = col;
  return loc;
}

EnvParse reject(const char* name, long def, int col, std::string msg) {
  EnvParse r;
  r.present = true;
  r.ok = false;
  r.value = def;
  r.status = diag::Status::error(std::move(msg), knob_loc(name, col));
  return r;
}

}  // namespace

EnvParse parse_env_long(const char* name, const char* text, long min_v,
                        long max_v, long def) {
  EnvParse r;
  r.value = def;
  if (text == nullptr) return r;
  r.present = true;
  std::string_view s(text);
  if (s.empty())
    return reject(name, def, 1, "empty value (expected an integer)");
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  if (i == s.size() || s[i] < '0' || s[i] > '9')
    return reject(name, def, static_cast<int>(i) + 1,
                  "expected a decimal integer, got '" + std::string(s) + "'");
  long v = 0;
  bool overflow = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9')
      return reject(name, def, static_cast<int>(i) + 1,
                    std::string("trailing garbage '") + c +
                        "' after integer in '" + std::string(s) + "'");
    if (v > 1000000000000000L) overflow = true;  // saturate, keep scanning
    if (!overflow) v = v * 10 + (c - '0');
  }
  if (s[0] == '-') v = -v;
  if (overflow || v < min_v || v > max_v)
    return reject(name, def, 1,
                  "value " + std::string(s) + " out of range [" +
                      std::to_string(min_v) + ", " + std::to_string(max_v) +
                      "]");
  r.value = v;
  return r;
}

EnvParse parse_env_bool(const char* name, const char* text, bool def) {
  EnvParse r;
  r.value = def ? 1 : 0;
  if (text == nullptr) return r;
  r.present = true;
  std::string_view s(text);
  if (s == "0" || s == "false") {
    r.value = 0;
    return r;
  }
  if (s == "1" || s == "true") {
    r.value = 1;
    return r;
  }
  return reject(name, def ? 1 : 0, 1,
                "expected 0, 1, false or true, got '" + std::string(s) + "'");
}

EnvParse parse_env_choice(const char* name, const char* text,
                          const char* const* choices, std::size_t n_choices,
                          std::size_t def_index) {
  EnvParse r;
  r.value = static_cast<long>(def_index);
  if (text == nullptr) return r;
  r.present = true;
  std::string_view s(text);
  for (std::size_t i = 0; i < n_choices; ++i) {
    if (s == choices[i]) {
      r.value = static_cast<long>(i);
      return r;
    }
  }
  std::string expected;
  for (std::size_t i = 0; i < n_choices; ++i) {
    if (i != 0) expected += i + 1 == n_choices ? " or " : ", ";
    expected += choices[i];
  }
  return reject(name, static_cast<long>(def_index), 1,
                "expected " + expected + ", got '" + std::string(s) + "'");
}

namespace {

void report(const EnvParse& r) {
  if (!r.ok)
    std::cerr << r.status.diagnostic().str() << " (using default)\n";
}

}  // namespace

long env_long_or(const char* name, long min_v, long max_v, long def) {
  EnvParse r = parse_env_long(name, std::getenv(name), min_v, max_v, def);
  report(r);
  return r.value;
}

bool env_bool_or(const char* name, bool def) {
  EnvParse r = parse_env_bool(name, std::getenv(name), def);
  report(r);
  return r.value != 0;
}

std::size_t env_choice_or(const char* name, const char* const* choices,
                          std::size_t n_choices, std::size_t def_index) {
  EnvParse r = parse_env_choice(name, std::getenv(name), choices, n_choices,
                                def_index);
  report(r);
  return static_cast<std::size_t>(r.value);
}

}  // namespace lps::core
