// metrics.hpp — experiment observability substrate: named counters, timers,
// and per-stage traces.
//
// The ROADMAP's north-star asks for observability on every hot path.  This
// module is the one place it lives: a process-wide registry of named double
// counters (simulation vector/event counts, BDD node/cache statistics,
// thread-pool job totals, pass outcomes) plus an ordered per-stage trace of
// timed regions (PassManager passes, flow stages).  Producers pay one mutex
// acquisition per *bulk* update — hot loops accumulate locally and publish
// once — so instrumentation is always on.
//
// Consumers: bench_util.hpp serializes a snapshot into every bench's --json
// document (the "metrics" object), and tools/check_experiments.py can gate
// on them alongside the claim values.  Tests reset the registry with
// metrics::reset() to observe a single operation in isolation.

#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace lps::core::metrics {

/// One timed region in the per-stage trace (insertion-ordered).
struct StageEvent {
  std::string name;
  double wall_ms = 0.0;
};

/// Process-wide metrics registry.  All members are thread-safe.
class Registry {
 public:
  static Registry& global();

  /// Accumulate `delta` into the named counter (created at 0 on first use).
  void add(std::string_view name, double delta);
  /// Overwrite the named counter (gauge semantics).
  void set(std::string_view name, double value);
  /// Current value of a counter; 0.0 when it was never touched.
  double value(std::string_view name) const;
  /// Append one event to the per-stage trace and accumulate its wall time
  /// into the counter `time_ms.<name>`.
  void record_stage(std::string_view name, double wall_ms);

  /// Sorted snapshot of every counter.
  std::map<std::string, double> counters() const;
  /// The per-stage trace in recording order.
  std::vector<StageEvent> stages() const;

  /// Drop all counters and the stage trace (tests and bench isolation).
  void reset();

  /// Serialize counters (and, when non-empty, the stage trace) as a JSON
  /// object: {"counters": {...}, "stages": [{"name":..., "wall_ms":...}]}.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::vector<StageEvent> stages_;
};

/// Accumulate into a counter on the global registry.
inline void count(std::string_view name, double delta = 1.0) {
  Registry::global().add(name, delta);
}
/// Gauge write on the global registry.
inline void gauge(std::string_view name, double value) {
  Registry::global().set(name, value);
}
/// Read a counter from the global registry.
inline double value(std::string_view name) {
  return Registry::global().value(name);
}
/// Reset the global registry.
inline void reset() { Registry::global().reset(); }

/// RAII wall-clock timer: on destruction adds the elapsed milliseconds to
/// the counter `time_ms.<name>` and, when `trace` is set, appends a
/// StageEvent so stage-by-stage breakdowns stay ordered.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name, bool trace = false)
      : name_(std::move(name)),
        trace_(trace),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  bool trace_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lps::core::metrics
