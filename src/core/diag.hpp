// diag.hpp — diagnostics substrate: Status, Diagnostic, DiagEngine, LPS_CHECK.
//
// Every parser, checker and pass in this library reports failures through
// one vocabulary instead of scattered throw/assert sites:
//
//  - Diagnostic: severity + message + optional source location (file:line:col
//    for the BLIF/KISS readers, node ids for the netlist checker).
//  - Status: "ok or one Diagnostic" — the return type for operations that
//    either succeed or fail with a reason.
//  - DiagEngine: a collector with a configurable retention limit, used by the
//    parsers (which keep going after the first error) and by the netlist
//    invariant checker.
//  - LPS_CHECK(cond, msg): an always-on invariant check.  Unlike assert() it
//    fires in release builds too, throwing diag::CheckError with the failing
//    condition and source position — a corrupted netlist raises a structured
//    error instead of silently corrupting memory.
//
// This header sits *below* every other subsystem (netlist, seq, sop, ...)
// so any layer can report diagnostics; it depends only on the standard
// library.

#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace lps::diag {

enum class Severity : std::uint8_t { Note, Warning, Error, Fatal };

std::string_view to_string(Severity s);

/// A position in a source artifact.  `file` is a label ("<string>" for
/// in-memory parses); line/col are 1-based, 0 = unknown.
struct SourceLoc {
  std::string file;
  int line = 0;
  int col = 0;

  bool known() const { return !file.empty() || line > 0; }
  /// "file:12:3", "file:12", "file" or "" depending on what is known.
  std::string str() const;
};

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string message;
  SourceLoc loc;

  /// "error: input.blif:12:3: cube width mismatch"
  std::string str() const;
};

/// Outcome of an operation: ok, or exactly one Diagnostic explaining why not.
class Status {
 public:
  Status() = default;  // ok
  static Status ok() { return {}; }
  static Status error(std::string msg, SourceLoc loc = {}) {
    Status s;
    s.diag_ = Diagnostic{Severity::Error, std::move(msg), std::move(loc)};
    return s;
  }
  static Status from(Diagnostic d) {
    Status s;
    s.diag_ = std::move(d);
    return s;
  }

  bool is_ok() const { return !diag_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  /// Precondition: !is_ok().
  const Diagnostic& diagnostic() const { return *diag_; }
  /// Message text, or "" when ok.
  std::string message() const { return diag_ ? diag_->message : ""; }

 private:
  std::optional<Diagnostic> diag_;
};

/// Collects diagnostics up to a retention limit.  Errors past the limit are
/// still *counted* (num_errors()) but not stored, so a pathological input
/// cannot blow up memory with a million diagnostics.
class DiagEngine {
 public:
  explicit DiagEngine(std::size_t max_kept = 64) : limit_(max_kept) {}

  void report(Diagnostic d);
  void report(Severity s, std::string msg, SourceLoc loc = {}) {
    report(Diagnostic{s, std::move(msg), std::move(loc)});
  }
  void error(std::string msg, SourceLoc loc = {}) {
    report(Severity::Error, std::move(msg), std::move(loc));
  }
  void warning(std::string msg, SourceLoc loc = {}) {
    report(Severity::Warning, std::move(msg), std::move(loc));
  }
  void note(std::string msg, SourceLoc loc = {}) {
    report(Severity::Note, std::move(msg), std::move(loc));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t num_errors() const { return num_errors_; }
  std::size_t num_warnings() const { return num_warnings_; }
  /// Diagnostics counted but not retained (past the limit).
  std::size_t num_suppressed() const { return suppressed_; }
  bool ok() const { return num_errors_ == 0; }
  /// True once the retention limit is hit — checkers may early-out.
  bool saturated() const { return diags_.size() >= limit_; }

  /// First error diagnostic, if any.
  const Diagnostic* first_error() const;
  /// All retained diagnostics formatted one per line.
  std::string str() const;
  void clear();

 private:
  std::size_t limit_;
  std::size_t num_errors_ = 0;
  std::size_t num_warnings_ = 0;
  std::size_t suppressed_ = 0;
  std::vector<Diagnostic> diags_;
};

/// Exception form of a Diagnostic, for the throwing API surfaces (LPS_CHECK,
/// blif::read, seq::read_kiss).  Derives from std::runtime_error so existing
/// catch sites keep working.  what() is "loc: message" *without* the severity
/// word — catch sites invariably prefix their own "error: ".
class DiagError : public std::runtime_error {
 public:
  explicit DiagError(Diagnostic d)
      : std::runtime_error(what_text(d)), diag_(std::move(d)) {}
  const Diagnostic& diagnostic() const { return diag_; }

 private:
  static std::string what_text(const Diagnostic& d) {
    return d.loc.known() ? d.loc.str() + ": " + d.message : d.message;
  }
  Diagnostic diag_;
};

/// Thrown by LPS_CHECK on a violated invariant.
class CheckError : public DiagError {
 public:
  using DiagError::DiagError;
};

/// Thrown by the throwing parser entry points on malformed input.
class ParseError : public DiagError {
 public:
  using DiagError::DiagError;
};

[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

}  // namespace lps::diag

/// Always-on invariant check: fires in release builds too, throwing
/// diag::CheckError.  `msg` may be any expression convertible to
/// std::string and is only evaluated on failure.
#define LPS_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) [[unlikely]]                                         \
      ::lps::diag::check_failed(#cond, __FILE__, __LINE__, (msg));    \
  } while (0)
