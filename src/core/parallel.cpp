#include "core/parallel.hpp"

#include <algorithm>
#include <memory>

#include "core/env.hpp"
#include "core/metrics.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lps::core {

namespace {

// Pin the calling thread to one CPU, round-robin over the visible set.
// Best-effort: a failed affinity call (restricted cpuset, exotic kernel) is
// ignored — pinning is a locality hint, never a correctness requirement.
void pin_self(unsigned slot) {
#if defined(__linux__)
  unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(slot % ncpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)slot;
#endif
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers, bool pin) : pinned_(pin) {
  metrics::count("parallel.pools_built");
  workers_.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    workers_.emplace_back([this, t, pin] {
      // Worker t takes CPU slot t + 1; the submitting thread (which also
      // executes chunks) implicitly owns slot 0.
      if (pin) pin_self(t + 1);
      std::unique_lock lk(mu_);
      for (;;) {
        cv_.wait(lk, [&] { return stop_ || (job_ && job_->next < job_->n); });
        if (stop_) return;
        drain(job_, lk);
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(Job* job, std::unique_lock<std::mutex>& lk) {
  while (job->next < job->n) {
    std::size_t i = job->next++;
    lk.unlock();
    std::exception_ptr err;
    try {
      (*job->fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err && !job->error) job->error = err;
    if (++job->done == job->n) done_cv_.notify_all();
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::lock_guard submit(submit_mu_);
  Job job;
  job.fn = &fn;
  job.n = n;
  std::unique_lock lk(mu_);
  job_ = &job;
  cv_.notify_all();
  drain(&job, lk);
  done_cv_.wait(lk, [&] { return job.done == job.n; });
  job_ = nullptr;
  lk.unlock();
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::mutex g_config_mu;
unsigned g_threads = 0;  // 0 = not yet initialized
int g_pin = -1;          // -1 = not yet sampled from LPS_SIM_PIN
int g_numa = -1;         // -1 = not yet sampled from LPS_SIM_NUMA
std::unique_ptr<ThreadPool> g_pool;

unsigned default_threads() {
  unsigned hc = std::thread::hardware_concurrency();
  // Malformed LPS_THREADS is rejected with a positioned diagnostic on
  // stderr and falls back to hardware concurrency (core/env.hpp) — it no
  // longer behaves silently like an unset variable.
  long v = env_long_or("LPS_THREADS", 1, 256,
                       static_cast<long>(hc ? hc : 1));
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned num_threads() {
  std::lock_guard lk(g_config_mu);
  if (g_threads == 0) g_threads = default_threads();
  return g_threads;
}

void set_num_threads(unsigned n) {
  std::lock_guard lk(g_config_mu);
  g_threads = std::clamp(n, 1u, 256u);
  g_pool.reset();  // rebuilt lazily at the new size
}

bool pin_threads() {
  std::lock_guard lk(g_config_mu);
  if (g_pin < 0) g_pin = env_bool_or("LPS_SIM_PIN", false) ? 1 : 0;
  return g_pin != 0;
}

void set_pin_threads(bool pin) {
  std::lock_guard lk(g_config_mu);
  int v = pin ? 1 : 0;
  if (g_pin == v) return;
  g_pin = v;
  g_pool.reset();  // rebuilt lazily with the new affinity policy
}

bool numa_first_touch() {
  std::lock_guard lk(g_config_mu);
  if (g_numa < 0) g_numa = env_bool_or("LPS_SIM_NUMA", true) ? 1 : 0;
  return g_numa != 0;
}

void set_numa_first_touch(bool on) {
  std::lock_guard lk(g_config_mu);
  g_numa = on ? 1 : 0;  // policy is read per-run by the drivers; no pool churn
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  unsigned threads = num_threads();
  // Sampled before g_config_mu is taken below — pin_threads() locks it too.
  bool pin = pin_threads();
  metrics::count("parallel.jobs");
  metrics::count("parallel.indices", static_cast<double>(n));
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool* pool;
  {
    std::lock_guard lk(g_config_mu);
    if (!g_pool || g_pool->lanes() != g_threads || g_pool->pinned() != pin)
      g_pool = std::make_unique<ThreadPool>(g_threads - 1, pin);
    pool = g_pool.get();
  }
  pool->for_each_index(n, fn);
}

std::size_t plan_chunks(std::size_t shards) {
  unsigned t = num_threads();
  std::size_t lanes = t <= 1 ? 1 : static_cast<std::size_t>(t) * 2;
  return std::max<std::size_t>(1, std::min(shards, lanes));
}

ShardPlan plan_shards(std::size_t total, std::size_t min_per_shard,
                      std::size_t max_shards) {
  ShardPlan p;
  p.total = total;
  if (min_per_shard == 0) min_per_shard = 1;
  p.shards = std::clamp<std::size_t>(total / min_per_shard, 1,
                                     std::max<std::size_t>(1, max_shards));
  p.per_shard = total / p.shards;
  return p;
}

}  // namespace lps::core
