// parallel.hpp — shared thread pool and deterministic work sharding.
//
// Every Monte Carlo estimator in this library (bit-parallel activity
// measurement, event-driven glitch counting) is embarrassingly parallel
// across its vector stream.  This module provides the one pool they share:
// a fixed set of worker threads fed from a blocking task queue, plus a
// `parallel_for` that runs indexed chunks with the *calling thread
// participating* (so a 1-thread configuration degenerates to a plain loop
// with zero thread traffic).
//
// Determinism contract
//   Work decomposition (shard count, shard sizes, per-shard seeds) is a
//   function of the workload alone — never of the thread count.  Callers
//   split their stream with plan_shards(), seed each shard with
//   shard_seed(), and merge per-shard results in shard order.  The merged
//   result is therefore bit-identical at 1, 2, 4, ... threads; threads only
//   change which worker happens to execute a shard.
//
// Configuration: LPS_THREADS environment variable (default: hardware
// concurrency), overridable at runtime with set_num_threads() or the
// ScopedThreads RAII guard used by benchmarks and tests.
//
// Caching contract: LPS_THREADS is sampled exactly once — on the first
// num_threads() call anywhere in the process — and never re-read.  Changing
// the environment variable after that first call has NO effect; the only
// authoritative runtime override is set_num_threads() (which ScopedThreads
// and the bench binaries' --threads flag use).  test_parallel.cpp pins this.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lps::core {

/// Thrown by cancellation poll points when their token has fired.  The
/// service layer maps it to a structured "deadline" error; library callers
/// that installed no token never see it.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled (deadline)") {}
};

/// Cooperative cancellation token.  A long-running estimate is handed a
/// token; the watchdog (or any other thread) calls cancel(), and the
/// estimate observes it at its poll points — shard-chunk boundaries in the
/// Monte Carlo drivers (sim/logicsim.cpp, sim/eventsim.cpp), frame batches
/// inside a shard, and the incremental analyzer's cone sweep — then throws
/// CancelledError.  Polling is one relaxed atomic load, so the check is
/// free on the hot path; cancellation latency is bounded by the work
/// between poll points (a shard chunk), never by the whole run.
///
/// Cancellation only ever aborts and discards a computation — it cannot
/// corrupt one: every poll point sits in code whose partial results are
/// either thrown away with the exception or restored by the caller
/// (power/incremental.hpp restores its caches before re-throwing).
class CancelToken {
 public:
  /// Request cancellation.  Safe from any thread, idempotent.
  void cancel() { flag_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called (or the poll budget ran out).
  bool cancelled() const {
    if (flag_.load(std::memory_order_relaxed)) return true;
    auto b = budget_.load(std::memory_order_relaxed);
    if (b >= 0 && budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      flag_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Deterministic test hook: auto-cancel after `n` further cancelled()
  /// checks — lets tests fire a cancellation at an exact poll point
  /// without any timing dependence.
  void cancel_after(std::int64_t n) {
    budget_.store(n, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<bool> flag_{false};
  mutable std::atomic<std::int64_t> budget_{-1};  // -1 = no budget
};

/// Poll point: throws CancelledError when `t` is set and has fired.
inline void poll_cancel(const CancelToken* t) {
  if (t && t->cancelled()) throw CancelledError();
}

/// Fixed-size pool of worker threads with a blocking task queue.  One job
/// (an indexed loop) runs at a time; submitters serialize.
class ThreadPool {
 public:
  /// `workers` background threads (0 is legal: every job then runs entirely
  /// on the submitting thread).  With `pin` set, worker t is pinned to CPU
  /// t % hardware_concurrency (Linux only; elsewhere `pin` is accepted and
  /// ignored) — see pin_threads() for why this is opt-in.
  explicit ThreadPool(unsigned workers, bool pin = false);

  /// Whether this pool's workers were pinned at construction.
  bool pinned() const { return pinned_; }
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution lanes = workers + the submitting thread.
  unsigned lanes() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n); blocks until all indices completed.
  /// The calling thread participates.  The first exception thrown by any
  /// index is rethrown here after the job drains.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;  // next index to hand out  (guarded by mu_)
    std::size_t done = 0;  // indices completed       (guarded by mu_)
    std::exception_ptr error;  // first failure        (guarded by mu_)
  };

  // Pull and run indices of *job until exhausted.  Called (and returns)
  // with `lk` held.
  void drain(Job* job, std::unique_lock<std::mutex>& lk);

  std::mutex mu_;
  std::condition_variable cv_;       // wakes workers: job posted / stop
  std::condition_variable done_cv_;  // wakes the submitter: job finished
  std::mutex submit_mu_;             // serializes for_each_index callers
  Job* job_ = nullptr;
  bool stop_ = false;
  bool pinned_ = false;
  std::vector<std::thread> workers_;
};

/// Current configured thread count (>= 1).  The FIRST call reads
/// LPS_THREADS (falling back to std::thread::hardware_concurrency()) and
/// caches the result; the environment is never consulted again.  Use
/// set_num_threads() to change the count after that.
unsigned num_threads();

/// Authoritative thread-count override: wins over LPS_THREADS regardless of
/// whether the environment was already sampled.  Rebuilds the shared pool
/// lazily.  Not safe concurrently with running parallel_for calls.
void set_num_threads(unsigned n);

/// RAII thread-count override for benchmarks and determinism tests.
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned n) : prev_(num_threads()) {
    set_num_threads(n);
  }
  ~ScopedThreads() { set_num_threads(prev_); }
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  unsigned prev_;
};

/// Run fn(i) for i in [0, n) on the shared pool (caller participates).
/// With 1 configured thread or n <= 1 this is a plain serial loop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Whether pool workers are pinned to cores (LPS_SIM_PIN, default off:
/// pinning helps dedicated estimation servers — stable L1/L2 residency for
/// each shard chunk's scratch, no migration between tape replays — but
/// hurts oversubscribed hosts where the scheduler needs to move work).
/// Same first-call caching and set-override contract as num_threads();
/// flipping it rebuilds the shared pool lazily.  Placement never changes
/// results — the determinism contract is seed/shard-plan based.
bool pin_threads();
void set_pin_threads(bool pin);

/// First-touch placement policy for shard-chunk scratch (LPS_SIM_NUMA,
/// default on): with it on, the Monte Carlo drivers allocate and first
/// write each chunk's scratch *inside the chunk task*, so the pages land
/// on the executing worker's NUMA node; off pre-faults the scratch on the
/// submitting thread (single-node placement — the A/B baseline).  Purely a
/// placement policy: counters and frames are bit-identical either way.
bool numa_first_touch();
void set_numa_first_touch(bool on);

/// RAII pin/first-touch override for benchmarks and tests.
class ScopedPinning {
 public:
  ScopedPinning(bool pin, bool numa)
      : prev_pin_(pin_threads()), prev_numa_(numa_first_touch()) {
    set_pin_threads(pin);
    set_numa_first_touch(numa);
  }
  ~ScopedPinning() {
    set_pin_threads(prev_pin_);
    set_numa_first_touch(prev_numa_);
  }
  ScopedPinning(const ScopedPinning&) = delete;
  ScopedPinning& operator=(const ScopedPinning&) = delete;

 private:
  bool prev_pin_;
  bool prev_numa_;
};

/// Finalizing 64-bit mixer (splitmix64).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-shard RNG seed: a pure function of the user seed and
/// the shard index, independent of thread count.
constexpr std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard) {
  return mix64(seed + 0x9E3779B97F4A7C15ull * (shard + 1));
}

/// Deterministic decomposition of `total` items into shards: every shard
/// gets `per_shard` items except the last, which absorbs the remainder.
/// Depends only on the workload — the determinism contract above.
struct ShardPlan {
  std::size_t shards = 1;
  std::size_t per_shard = 0;
  std::size_t total = 0;

  std::size_t begin(std::size_t s) const { return s * per_shard; }
  std::size_t count(std::size_t s) const {
    return s + 1 < shards ? per_shard : total - per_shard * (shards - 1);
  }
};

/// Plan at least `min_per_shard` items per shard, at most `max_shards`
/// shards (so tiny workloads stay serial and keep their legacy RNG stream).
ShardPlan plan_shards(std::size_t total, std::size_t min_per_shard,
                      std::size_t max_shards = 64);

/// Pool-dispatch grain for `shards` independent shards: how many chunk
/// tasks the Monte Carlo drivers submit.  Two chunks per execution lane
/// (capped by the shard count) so a lane that finishes early steals a
/// second chunk instead of idling — with one-chunk-per-lane the whole run
/// waits on the slowest lane, which is what flattened the 8/16-thread
/// scaling curve.  Chunk boundaries never affect results: per-shard seeds
/// and counts come from the plan alone, and chunk accumulators merge in
/// chunk order == shard order.
std::size_t plan_chunks(std::size_t shards);

}  // namespace lps::core
