#include "core/pass.hpp"

#include <optional>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "logicopt/dontcare.hpp"
#include "logicopt/path_balance.hpp"
#include "logicopt/speculate.hpp"
#include "netlist/validate.hpp"
#include "power/incremental.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {

bool all_ok(const std::vector<PassRecord>& records) {
  for (const auto& r : records)
    if (!r.ok) return false;
  return true;
}

std::vector<PassRecord> PassManager::run(Netlist& net) const {
  std::vector<PassRecord> records;
  // Scope the speculation worker default over the whole pipeline so passes
  // constructed with default engine options pick it up.
  std::optional<logicopt::speculate::ScopedWorkers> spec_workers;
  if (opt_.opt_workers > 0) spec_workers.emplace(opt_.opt_workers);
  const bool guard_needed =
      opt_.verify || opt_.check_invariants || opt_.rollback;
  const bool use_undo = guard_needed && opt_.use_undo_log;
  const bool use_snapshot = guard_needed && !opt_.use_undo_log;
  // Per-pass power estimates ride the same mutation journal rollback uses:
  // a successful pass's touched set scopes the re-simulation to its fanout
  // cone, and a rolled-back pass leaves the cached baseline valid as-is.
  std::optional<power::IncrementalAnalyzer> analyzer;
  if (opt_.estimate_power && opt_.use_incremental_power) {
    try {
      analyzer.emplace(net, opt_.estimate);
    } catch (const CancelledError&) {
      throw;  // deadline during the baseline: abort the whole pipeline
    } catch (const std::exception&) {
      // Degraded but alive: per-pass estimates fall back to full analyze().
      metrics::count("pass.estimate_fallback");
    }
  }
  // Estimate degradation ladder: a failed incremental re-estimate never
  // fails the pass (the rewrite itself already committed and verified).
  // Rung 1 is the cone update; rung 2 rebuilds the whole baseline; rung 3
  // drops the analyzer so the per-pass estimate below becomes a full
  // power::analyze().  Cancellation is different in kind — a deadline, not
  // an estimator defect — and aborts the pipeline instead of degrading it;
  // reanalyze()/rebaseline() restore the analyzer's caches before throwing,
  // so nothing is left half-updated.
  auto reestimate = [&](const Netlist::TouchedNodes& touched) {
    try {
      analyzer->reanalyze(touched);
      return;
    } catch (const CancelledError&) {
      throw;
    } catch (const std::exception&) {
      metrics::count("pass.estimate_fallback");
    }
    try {
      analyzer->rebaseline();
    } catch (const CancelledError&) {
      throw;
    } catch (const std::exception&) {
      analyzer.reset();
      metrics::count("pass.estimate_dropped");
    }
  };
  for (const auto& p : passes_) {
    metrics::ScopedTimer timer("pass." + p->name(), /*trace=*/true);
    metrics::count("pass.runs");
    Netlist before = use_snapshot ? net.clone() : Netlist{};
    PassRecord rec;
    rec.pass = p->name();

    // Functional reference for the undo-log path: a trace digest of the
    // pre-pass circuit replaces keeping the circuit itself alive.
    sim::SimTrace ref;
    std::size_t base_depth = 0;
    if (use_undo) {
      if (opt_.verify)
        ref = sim::functional_trace(net, opt_.verify_vectors, opt_.verify_seed);
      net.begin_undo();
      base_depth = net.undo_depth();
    }

    // A failing pass may leave the netlist half-rewritten or structurally
    // corrupt — possibly with nested undo epochs of its own still open
    // (e.g. a candidate loop that died mid-probe).  Every failure path
    // unwinds the journal down to and including the pass epoch; a single
    // rollback_undo() would pop only the innermost epoch and restore a
    // half-applied pass.
    auto unwind_pass = [&net, base_depth] {
      while (net.undo_depth() >= base_depth) net.rollback_undo();
    };
    auto fail = [&](diag::Diagnostic d) {
      if (use_undo)
        unwind_pass();
      else if (use_snapshot)
        net = std::move(before);
      rec.ok = false;
      rec.rolled_back = true;
      rec.diag = std::move(d);
      if (!opt_.rollback) throw diag::CheckError(rec.diag);
    };

    try {
      rec.summary = p->run(net);
      // A pass that returns with inner epochs open is a (benign) defect:
      // absorb them into the pass epoch so verification and commit see one
      // coherent journal level.
      while (use_undo && net.undo_depth() > base_depth) {
        metrics::count("pass.stray_epochs");
        net.commit_undo();
      }
      if (opt_.check_invariants) {
        diag::DiagEngine eng(4);
        if (validate(net, eng) > 0) {
          diag::Diagnostic d = *eng.first_error();
          d.message =
              "pass " + p->name() + " broke netlist invariants: " + d.message;
          fail(std::move(d));
        }
      }
      if (rec.ok && opt_.verify) {
        bool same =
            use_undo
                ? sim::functional_trace(net, opt_.verify_vectors,
                                        opt_.verify_seed) == ref
                : sim::equivalent_random(before, net, opt_.verify_vectors,
                                         opt_.verify_seed);
        if (!same) {
          fail({diag::Severity::Error,
                "pass " + p->name() + " changed circuit function",
                {}});
        } else {
          rec.verified = true;
        }
      }
    } catch (const diag::DiagError& e) {
      if (!rec.ok) throw;  // rethrown by fail() in strict mode
      fail(e.diagnostic());
    } catch (const CancelledError&) {
      // Deadline fired inside the pass body: restore the pre-pass state and
      // abort the pipeline — cancellation is not a pass defect and must not
      // be swallowed as one.
      if (use_undo)
        unwind_pass();
      else if (use_snapshot)
        net = std::move(before);
      throw;
    } catch (const std::exception& e) {
      fail({diag::Severity::Error,
            "pass " + p->name() + " threw: " + e.what(),
            {}});
    }
    if (use_undo && rec.ok) {
      if (analyzer) {
        // Touched set must be read while the undo epoch is still open.
        auto touched = net.touched_nodes();
        net.commit_undo();
        reestimate(touched);
      } else {
        net.commit_undo();
      }
    } else if (analyzer && rec.ok) {
      // No journal (snapshot or unguarded run): full re-baseline.
      Netlist::TouchedNodes all;
      all.all = true;
      reestimate(all);
    }
    if (opt_.estimate_power) {
      // Rolled-back passes restored the pre-pass circuit, which the cached
      // analysis still describes.
      rec.power_w =
          analyzer
              ? analyzer->analysis().report.breakdown.total_w()
              : power::analyze(net, opt_.estimate).report.breakdown.total_w();
    }
    if (rec.rolled_back) metrics::count("pass.rolled_back");
    if (rec.verified) metrics::count("pass.verified");
    records.push_back(std::move(rec));
  }
  return records;
}

std::unique_ptr<Pass> make_strash_pass() {
  return std::make_unique<FnPass>("strash", [](Netlist& net) {
    std::size_t before = net.num_gates();
    net = strash(net);
    return "gates " + std::to_string(before) + " -> " +
           std::to_string(net.num_gates());
  });
}

std::unique_ptr<Pass> make_sweep_pass() {
  return std::make_unique<FnPass>("sweep", [](Netlist& net) {
    std::size_t removed = net.sweep();
    return "removed " + std::to_string(removed) + " dead nodes";
  });
}

std::unique_ptr<Pass> make_dontcare_pass() {
  return std::make_unique<FnPass>("dontcare", [](Netlist& net) {
    auto st = sim::measure_activity(net, 64, 7);
    auto res = logicopt::optimize_dontcare(net, st.transition_prob);
    return "consts " + std::to_string(res.const_replacements) + ", merges " +
           std::to_string(res.merges) + ", gates " +
           std::to_string(res.gates_before) + " -> " +
           std::to_string(res.gates_after);
  });
}

std::unique_ptr<Pass> make_datapath_rewrite_pass(
    logicopt::rewrite::RewriteOptions opt) {
  return std::make_unique<FnPass>("datapath-rewrite", [opt](Netlist& net) {
    auto res = logicopt::rewrite::rewrite_datapath(net, opt);
    return "kept " + std::to_string(res.kept) + "/" +
           std::to_string(res.candidates_scored) + " scored (" +
           std::to_string(res.candidates_seen) + " matched), power " +
           std::to_string(res.power_before_w) + " -> " +
           std::to_string(res.power_after_w) + " W, gates " +
           std::to_string(res.gates_before) + " -> " +
           std::to_string(res.gates_after) +
           (res.capped ? ", queue CAPPED" : "");
  });
}

std::unique_ptr<Pass> make_bdd_synth_pass(logicopt::BddSynthOptions opt) {
  return std::make_unique<FnPass>("bdd-synth", [opt](Netlist& net) {
    auto res = logicopt::synthesize_bdd_cones(net, opt);
    return "kept " + std::to_string(res.kept) + "/" +
           std::to_string(res.cones_examined) + " cones, power " +
           std::to_string(res.power_before_w) + " -> " +
           std::to_string(res.power_after_w) + " W, gates " +
           std::to_string(res.gates_before) + " -> " +
           std::to_string(res.gates_after) +
           (res.note.empty() ? "" : ", " + res.note);
  });
}

std::unique_ptr<Pass> make_balance_pass(int buffer_budget) {
  return std::make_unique<FnPass>("path-balance", [buffer_budget](Netlist& net) {
    auto res = buffer_budget < 0
                   ? logicopt::full_balance(net)
                   : logicopt::partial_balance(net, buffer_budget);
    return "buffers +" + std::to_string(res.buffers_inserted) + ", delay " +
           std::to_string(res.critical_delay_before) + " -> " +
           std::to_string(res.critical_delay_after);
  });
}

}  // namespace lps::core
