#include "core/pass.hpp"

#include <stdexcept>

#include "logicopt/dontcare.hpp"
#include "logicopt/path_balance.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {

std::vector<PassRecord> PassManager::run(Netlist& net) const {
  std::vector<PassRecord> records;
  for (const auto& p : passes_) {
    Netlist before = verify_ ? net.clone() : Netlist{};
    PassRecord rec;
    rec.pass = p->name();
    rec.summary = p->run(net);
    if (auto err = net.check(); !err.empty())
      throw std::logic_error("pass " + p->name() +
                             " broke netlist invariants: " + err);
    if (verify_) {
      if (!sim::equivalent_random(before, net, 1024, 0xABCD))
        throw std::logic_error("pass " + p->name() +
                               " changed circuit function");
      rec.verified = true;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::unique_ptr<Pass> make_strash_pass() {
  return std::make_unique<FnPass>("strash", [](Netlist& net) {
    std::size_t before = net.num_gates();
    net = strash(net);
    return "gates " + std::to_string(before) + " -> " +
           std::to_string(net.num_gates());
  });
}

std::unique_ptr<Pass> make_sweep_pass() {
  return std::make_unique<FnPass>("sweep", [](Netlist& net) {
    std::size_t removed = net.sweep();
    return "removed " + std::to_string(removed) + " dead nodes";
  });
}

std::unique_ptr<Pass> make_dontcare_pass() {
  return std::make_unique<FnPass>("dontcare", [](Netlist& net) {
    auto st = sim::measure_activity(net, 64, 7);
    auto res = logicopt::optimize_dontcare(net, st.transition_prob);
    return "consts " + std::to_string(res.const_replacements) + ", merges " +
           std::to_string(res.merges) + ", gates " +
           std::to_string(res.gates_before) + " -> " +
           std::to_string(res.gates_after);
  });
}

std::unique_ptr<Pass> make_balance_pass(int buffer_budget) {
  return std::make_unique<FnPass>("path-balance", [buffer_budget](Netlist& net) {
    auto res = buffer_budget < 0
                   ? logicopt::full_balance(net)
                   : logicopt::partial_balance(net, buffer_budget);
    return "buffers +" + std::to_string(res.buffers_inserted) + ", delay " +
           std::to_string(res.critical_delay_before) + " -> " +
           std::to_string(res.critical_delay_after);
  });
}

}  // namespace lps::core
