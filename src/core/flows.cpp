#include "core/flows.hpp"

#include <stdexcept>

#include "circuit/sizing.hpp"
#include "core/metrics.hpp"
#include "core/pass.hpp"
#include "logicopt/dontcare.hpp"
#include "logicopt/resynth.hpp"
#include "logicopt/path_balance.hpp"
#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {

namespace {

StageReport measure(const std::string& stage, const Netlist& net,
                    const FlowOptions& opt) {
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::Timed;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  ao.params = opt.params;
  auto a = power::analyze(net, ao);
  StageReport r;
  r.stage = stage;
  r.power_w = a.report.breakdown.total_w();
  r.glitch_fraction = a.glitch_fraction;
  r.gates = net.num_gates();
  r.delay = net.critical_delay();
  return r;
}

}  // namespace

FlowResult optimize_combinational(const Netlist& input,
                                  const FlowOptions& opt) {
  FlowResult res;
  res.circuit = strash(input);
  if (!sim::equivalent_random(input, res.circuit, 512, 17))
    throw std::logic_error("flow: strash changed function");
  res.stages.push_back(measure("input", input, opt));
  res.stages.push_back(measure("strash", res.circuit, opt));

  // Each stage is kept only if it actually lowers measured power — the
  // survey repeatedly notes that overheads (buffer capacitance, gating
  // logic) can offset the savings, so a production flow measures and backs
  // out losing transforms.  A stage that throws, corrupts the netlist or
  // changes the function is likewise rolled back and recorded as failed;
  // the remaining stages still run on the pre-stage circuit.  Rollback uses
  // the mutation journal (O(edit size)) and a pre-stage functional_trace
  // digest instead of a deep pre-stage clone.
  auto attempt = [&](const std::string& stage, auto&& transform) {
    metrics::ScopedTimer timer("flow." + stage, /*trace=*/true);
    sim::SimTrace ref = sim::functional_trace(res.circuit, 512, 17);
    res.circuit.begin_undo();
    double p_before = res.stages.back().power_w;
    std::string failure;
    try {
      transform(res.circuit);
      if (auto err = res.circuit.check(); !err.empty())
        failure = "broke netlist invariants: " + err;
      else if (sim::functional_trace(res.circuit, 512, 17) != ref)
        failure = "changed circuit function";
    } catch (const std::exception& e) {
      failure = e.what();
    }
    if (!failure.empty()) {
      res.circuit.rollback_undo();
      StageReport rep = measure(stage + " (failed)", res.circuit, opt);
      rep.status = "failed";
      rep.note = failure;
      metrics::count("flow.stages_failed");
      res.stages.push_back(std::move(rep));
      return;
    }
    StageReport rep = measure(stage, res.circuit, opt);
    if (rep.power_w <= p_before) {
      res.circuit.commit_undo();
      metrics::count("flow.stages_kept");
      res.stages.push_back(rep);
    } else {
      res.circuit.rollback_undo();
      rep = measure(stage + " (reverted)", res.circuit, opt);
      rep.status = "reverted";
      metrics::count("flow.stages_reverted");
      res.stages.push_back(rep);
    }
  };
  if (opt.run_dontcare) {
    attempt("dontcare", [&](Netlist& net) {
      auto st = sim::measure_activity(net, 64, opt.seed);
      logicopt::optimize_dontcare(net, st.transition_prob);
    });
  }
  if (opt.run_dontcare) {
    attempt("resynth", [&](Netlist& net) {
      auto st = sim::measure_activity(net, 64, opt.seed);
      logicopt::resynthesize_windows(net, st.transition_prob);
    });
  }
  if (opt.run_balance) {
    attempt("balance", [&](Netlist& net) { logicopt::full_balance(net); });
  }
  if (opt.run_sizing) {
    attempt("sizing", [&](Netlist& net) {
      power::AnalysisOptions ao;
      ao.mode = power::ActivityMode::Timed;
      ao.n_vectors = opt.sim_vectors;
      ao.seed = opt.seed;
      auto a = power::analyze(net, ao);
      circuit::SizingParams sp;
      sp.start_from_max = false;  // in-place: only ever removes capacitance
      sp.min_size = 0.5;
      sp.step = 0.25;
      circuit::size_for_power(net, a.toggles_per_cycle, opt.params, sp);
    });
  }
  return res;
}

FsmFlowResult optimize_fsm(const seq::Stg& stg, const FlowOptions& opt) {
  metrics::ScopedTimer timer("flow.fsm", /*trace=*/true);
  FsmFlowResult r;
  auto binary = seq::binary_encoding(stg);
  seq::AnnealOptions an;
  an.seed = static_cast<std::uint32_t>(opt.seed);
  auto low = seq::low_power_encoding(stg, an);
  r.wswitch_binary = binary.weighted_switching(stg);
  r.wswitch_lowpower = low.weighted_switching(stg);

  Netlist nb = seq::synthesize_fsm(stg, binary, stg.state_name(0) + "_bin");
  Netlist nl = seq::synthesize_fsm(stg, low, stg.state_name(0) + "_low");
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::Timed;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  ao.params = opt.params;
  r.power_binary_w = power::analyze(nb, ao).report.breakdown.total_w();
  r.power_lowpower_w = power::analyze(nl, ao).report.breakdown.total_w();

  seq::gate_fsm_self_loops(nl);
  auto patterns = seq::detect_hold_patterns(nl);
  auto ca = seq::clock_activity(nl, patterns, opt.sim_vectors, opt.seed);
  r.clock_saving_fraction = ca.clock_power_saving_fraction();
  r.circuit = std::move(nl);
  return r;
}

}  // namespace lps::core
