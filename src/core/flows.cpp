#include "core/flows.hpp"

#include <optional>
#include <stdexcept>

#include "circuit/sizing.hpp"
#include "core/metrics.hpp"
#include "core/pass.hpp"
#include "logicopt/bdd_synth.hpp"
#include "logicopt/dontcare.hpp"
#include "logicopt/resynth.hpp"
#include "logicopt/rewrite/engine.hpp"
#include "logicopt/path_balance.hpp"
#include "power/incremental.hpp"
#include "seq/clock_gating.hpp"
#include "seq/encoding.hpp"
#include "seq/guarded_eval.hpp"
#include "sim/logicsim.hpp"

namespace lps::core {

namespace {

power::AnalysisOptions estimate_options(const FlowOptions& opt) {
  power::AnalysisOptions ao;
  ao.mode = opt.estimate_mode;
  ao.n_vectors = opt.sim_vectors;
  ao.seed = opt.seed;
  ao.params = opt.params;
  ao.cancel = opt.cancel;
  return ao;
}

StageReport stage_report(const std::string& stage, const Netlist& net,
                         const power::Analysis& a) {
  StageReport r;
  r.stage = stage;
  r.power_w = a.report.breakdown.total_w();
  r.glitch_fraction = a.glitch_fraction;
  r.gates = net.num_gates();
  r.delay = net.critical_delay();
  return r;
}

StageReport measure(const std::string& stage, const Netlist& net,
                    const FlowOptions& opt) {
  return stage_report(stage, net, power::analyze(net, estimate_options(opt)));
}

// Shared stage loop of the combinational and sequential flows: run each
// transform under the mutation journal, verify function and invariants,
// estimate power, and keep the rewrite only if it lowered power.  Estimates
// go through IncrementalAnalyzer by default — only the touched fanout cone
// is re-simulated per stage (ZeroDelay mode; Timed falls back to full runs,
// recorded as such) — with FlowOptions::use_incremental_power = false
// selecting the legacy full per-stage analysis for differential testing.
// Both paths produce bit-identical StageReports.
class StageRunner {
 public:
  StageRunner(FlowResult& res, const FlowOptions& opt)
      : res_(res), opt_(opt), ao_(estimate_options(opt)) {
    if (opt.use_incremental_power) {
      try {
        inc_.emplace(res.circuit, ao_);
      } catch (const CancelledError&) {
        throw;  // deadline during the baseline: abort the flow
      } catch (const std::exception&) {
        // Degraded but alive: stages estimate with full analyze() instead.
        metrics::count("flow.estimate_fallback");
      }
    }
  }

  /// Report for the circuit as it stands (used for the post-strash entry).
  StageReport current(const std::string& stage) {
    return stage_report(stage, res_.circuit,
                        inc_ ? inc_->analysis()
                             : power::analyze(res_.circuit, ao_));
  }

  // Each stage is kept only if it actually lowers estimated power — the
  // survey repeatedly notes that overheads (buffer capacitance, gating
  // logic) can offset the savings, so a production flow measures and backs
  // out losing transforms.  A stage that throws, corrupts the netlist or
  // changes the function is likewise rolled back and recorded as failed;
  // the remaining stages still run on the pre-stage circuit.  Rollback uses
  // the mutation journal (O(edit size)) and a pre-stage functional_trace
  // digest instead of a deep pre-stage clone; the same journal's touched
  // set feeds the incremental estimator.
  template <typename Fn>
  void attempt(const std::string& stage, Fn&& transform) {
    Netlist& net = res_.circuit;
    metrics::ScopedTimer timer("flow." + stage, /*trace=*/true);
    sim::SimTrace ref = sim::functional_trace(net, 512, 17);
    std::size_t rb_before = net.undo_rollbacks();
    net.begin_undo();
    // The stage epoch's depth.  A transform may open nested epochs of its
    // own (the datapath engine journals each candidate); one that dies with
    // an inner epoch still open must be unwound down TO this depth — a
    // single rollback_undo() would pop only the innermost candidate epoch
    // and leave the stage half-applied (and the journal stack corrupted for
    // every later stage).
    const std::size_t base_depth = net.undo_depth();
    auto unwind_stage = [&net, base_depth] {
      while (net.undo_depth() >= base_depth) net.rollback_undo();
    };
    double p_before = res_.stages.back().power_w;
    std::string failure;
    try {
      transform(net);
      // A transform that *returns* with inner epochs open is also a defect,
      // but a benign one: absorb them into the stage epoch (the function
      // check below still guards the result) and record the smell.
      while (net.undo_depth() > base_depth) {
        metrics::count("flow.stray_epochs");
        net.commit_undo();
      }
      if (auto err = net.check(); !err.empty())
        failure = "broke netlist invariants: " + err;
      else if (sim::functional_trace(net, 512, 17) != ref)
        failure = "changed circuit function";
    } catch (const CancelledError&) {
      // Deadline fired inside the transform: restore the pre-stage circuit
      // and abort the flow — never record cancellation as a stage defect.
      unwind_stage();
      throw;
    } catch (const std::exception& e) {
      failure = e.what();
    }
    if (!failure.empty()) {
      // The estimator cache was never advanced, so after rollback it still
      // matches the restored circuit — the failed-stage report reads it.
      unwind_stage();
      StageReport rep = inc_ ? current(stage + " (failed)")
                             : measure(stage + " (failed)", net, opt_);
      rep.status = "failed";
      rep.note = failure;
      rep.rollbacks = net.undo_rollbacks() - rb_before;
      metrics::count("flow.stages_failed");
      res_.stages.push_back(std::move(rep));
      return;
    }
    // Estimate the mutated circuit: the journal's touched set (captured
    // while the undo epoch is still open) scopes the re-simulation.  An
    // estimator defect degrades down the ladder — cone update, full
    // rebaseline, drop the analyzer — without failing the stage; only a
    // cancellation (deadline) aborts, after rolling the stage back.
    StageReport rep;
    std::size_t resim = 0, full = 0;
    bool can_revert = false;  // does the estimator hold a revertable snapshot?
    if (inc_) {
      auto touched = net.touched_nodes();
      try {
        rep = stage_report(stage, net, inc_->reanalyze(touched));
        resim = inc_->last_update().resim_nodes;
        full = inc_->last_update().live_nodes;
        can_revert = true;
      } catch (const CancelledError&) {
        // reanalyze restored the estimator's caches before throwing; the
        // journal restores the circuit they describe.
        net.rollback_undo();
        throw;
      } catch (const std::exception&) {
        metrics::count("flow.estimate_fallback");
        try {
          inc_->rebaseline();
          rep = stage_report(stage, net, inc_->analysis());
        } catch (const CancelledError&) {
          net.rollback_undo();
          throw;
        } catch (const std::exception&) {
          inc_.reset();  // bottom rung: full analyze per stage from here on
          metrics::count("flow.estimate_dropped");
        }
      }
    }
    if (!inc_ && rep.stage.empty()) {
      try {
        rep = measure(stage, net, opt_);
      } catch (const CancelledError&) {
        net.rollback_undo();
        throw;
      }
    }
    if (rep.power_w <= p_before) {
      net.commit_undo();
      metrics::count("flow.stages_kept");
    } else {
      net.rollback_undo();
      if (inc_) {
        try {
          // A rebaselined estimate left no snapshot to pop; rebuild against
          // the restored circuit instead.
          if (can_revert)
            inc_->revert_last();
          else
            inc_->rebaseline();
        } catch (const CancelledError&) {
          throw;  // circuit already restored; estimator caches are clean
        } catch (const std::exception&) {
          inc_.reset();
          metrics::count("flow.estimate_dropped");
        }
      }
      if (inc_)
        rep = current(stage + " (reverted)");
      else
        rep = measure(stage + " (reverted)", net, opt_);
      rep.status = "reverted";
      metrics::count("flow.stages_reverted");
    }
    rep.resim_nodes = resim;  // the estimate's cost, kept or reverted
    rep.full_nodes = full;
    rep.rollbacks = net.undo_rollbacks() - rb_before;
    res_.stages.push_back(std::move(rep));
  }

 private:
  FlowResult& res_;
  const FlowOptions& opt_;
  power::AnalysisOptions ao_;
  std::optional<power::IncrementalAnalyzer> inc_;
};

void run_logic_stages(StageRunner& runner, const FlowOptions& opt) {
  if (opt.run_dontcare) {
    runner.attempt("dontcare", [&](Netlist& net) {
      auto st = sim::measure_activity(net, 64, opt.seed);
      logicopt::optimize_dontcare(net, st.transition_prob);
    });
    runner.attempt("resynth", [&](Netlist& net) {
      auto st = sim::measure_activity(net, 64, opt.seed);
      logicopt::ResynthOptions rso;
      rso.workers = opt.opt_workers;
      logicopt::resynthesize_windows(net, st.transition_prob, rso);
    });
  }
  if (opt.run_datapath) {
    runner.attempt("datapath", [&](Netlist& net) {
      logicopt::rewrite::RewriteOptions ro;
      ro.seed = opt.seed;
      // Match the flow's own estimator stimulus so that (in ZeroDelay mode)
      // a rewrite the engine keeps is a win under the stage keep-check too.
      ro.sim_vectors = opt.sim_vectors;
      ro.workers = opt.opt_workers;
      logicopt::rewrite::rewrite_datapath(net, ro);
    });
  }
  if (opt.run_bdd_synth) {
    runner.attempt("bdd_synth", [&](Netlist& net) {
      logicopt::BddSynthOptions bo;
      // Match the flow's estimator stimulus so a cone the engine keeps is
      // a win under the stage keep-check too (ZeroDelay mode).
      bo.sim_vectors = opt.sim_vectors;
      bo.seed = opt.seed;
      logicopt::synthesize_bdd_cones(net, bo);
    });
  }
  if (opt.run_balance) {
    runner.attempt("balance", [&](Netlist& net) { logicopt::full_balance(net); });
  }
  if (opt.run_sizing) {
    runner.attempt("sizing", [&](Netlist& net) {
      power::AnalysisOptions ao;
      ao.mode = power::ActivityMode::Timed;
      ao.n_vectors = opt.sim_vectors;
      ao.seed = opt.seed;
      auto a = power::analyze(net, ao);
      circuit::SizingParams sp;
      sp.start_from_max = false;  // in-place: only ever removes capacitance
      sp.min_size = 0.5;
      sp.step = 0.25;
      circuit::size_for_power(net, a.toggles_per_cycle, opt.params, sp);
    });
  }
}

}  // namespace

FlowResult optimize_combinational(const Netlist& input,
                                  const FlowOptions& opt) {
  FlowResult res;
  res.circuit = strash(input);
  if (!sim::equivalent_random(input, res.circuit, 512, 17))
    throw std::logic_error("flow: strash changed function");
  res.stages.push_back(measure("input", input, opt));
  StageRunner runner(res, opt);
  res.stages.push_back(runner.current("strash"));
  run_logic_stages(runner, opt);
  return res;
}

FlowResult optimize_sequential(const Netlist& input, const FlowOptions& opt) {
  FlowResult res;
  res.circuit = strash(input);
  if (!sim::equivalent_random(input, res.circuit, 512, 17))
    throw std::logic_error("flow: strash changed function");
  res.stages.push_back(measure("input", input, opt));
  StageRunner runner(res, opt);
  res.stages.push_back(runner.current("strash"));
  run_logic_stages(runner, opt);
  // Hold-on-self-loop gating: functionally a no-op, kept only when the
  // comparator's own power doesn't eat the clock-gating win.
  if (!res.circuit.dffs().empty()) {
    runner.attempt("selfloop-gate",
                   [](Netlist& net) { seq::gate_fsm_self_loops(net); });
  }
  return res;
}

FsmFlowResult optimize_fsm(const seq::Stg& stg, const FlowOptions& opt) {
  metrics::ScopedTimer timer("flow.fsm", /*trace=*/true);
  FsmFlowResult r;
  auto binary = seq::binary_encoding(stg);
  seq::AnnealOptions an;
  an.seed = static_cast<std::uint32_t>(opt.seed);
  auto low = seq::low_power_encoding(stg, an);
  r.wswitch_binary = binary.weighted_switching(stg);
  r.wswitch_lowpower = low.weighted_switching(stg);

  Netlist nb = seq::synthesize_fsm(stg, binary, stg.state_name(0) + "_bin");
  Netlist nl = seq::synthesize_fsm(stg, low, stg.state_name(0) + "_low");
  power::AnalysisOptions ao = estimate_options(opt);
  r.power_binary_w = power::analyze(nb, ao).report.breakdown.total_w();

  if (opt.use_incremental_power) {
    // The gating rewrite is local, so the post-gating estimate reuses the
    // pre-gating baseline and re-simulates only the touched cone.
    power::IncrementalAnalyzer inc(nl, ao);
    r.power_lowpower_w = inc.analysis().report.breakdown.total_w();
    nl.begin_undo();
    seq::gate_fsm_self_loops(nl);
    auto touched = nl.touched_nodes();
    nl.commit_undo();
    r.power_gated_w = inc.reanalyze(touched).report.breakdown.total_w();
  } else {
    r.power_lowpower_w = power::analyze(nl, ao).report.breakdown.total_w();
    seq::gate_fsm_self_loops(nl);
    r.power_gated_w = power::analyze(nl, ao).report.breakdown.total_w();
  }
  auto patterns = seq::detect_hold_patterns(nl);
  auto ca = seq::clock_activity(nl, patterns, opt.sim_vectors, opt.seed);
  r.clock_saving_fraction = ca.clock_power_saving_fraction();
  r.circuit = std::move(nl);
  return r;
}

}  // namespace lps::core
