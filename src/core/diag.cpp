#include "core/diag.hpp"

namespace lps::diag {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    case Severity::Fatal: return "fatal";
  }
  return "?";
}

std::string SourceLoc::str() const {
  std::string s = file;
  if (line > 0) {
    if (!s.empty()) s += ':';
    s += std::to_string(line);
    if (col > 0) {
      s += ':';
      s += std::to_string(col);
    }
  }
  return s;
}

std::string Diagnostic::str() const {
  std::string s(to_string(severity));
  s += ": ";
  if (loc.known()) {
    s += loc.str();
    s += ": ";
  }
  s += message;
  return s;
}

void DiagEngine::report(Diagnostic d) {
  if (d.severity == Severity::Error || d.severity == Severity::Fatal)
    ++num_errors_;
  else if (d.severity == Severity::Warning)
    ++num_warnings_;
  if (diags_.size() < limit_)
    diags_.push_back(std::move(d));
  else
    ++suppressed_;
}

const Diagnostic* DiagEngine::first_error() const {
  for (const auto& d : diags_)
    if (d.severity == Severity::Error || d.severity == Severity::Fatal)
      return &d;
  return nullptr;
}

std::string DiagEngine::str() const {
  std::string s;
  for (const auto& d : diags_) {
    s += d.str();
    s += '\n';
  }
  if (suppressed_ > 0)
    s += "(" + std::to_string(suppressed_) + " further diagnostics omitted)\n";
  return s;
}

void DiagEngine::clear() {
  diags_.clear();
  num_errors_ = num_warnings_ = suppressed_ = 0;
}

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  Diagnostic d;
  d.severity = Severity::Fatal;
  d.message = "invariant violated: " + std::string(cond) +
              (msg.empty() ? "" : " — " + msg);
  d.loc = SourceLoc{file, line, 0};
  throw CheckError(std::move(d));
}

}  // namespace lps::diag
