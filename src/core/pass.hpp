// pass.hpp — pass manager for netlist-level optimization pipelines.
//
// Wraps the individual techniques behind a uniform interface so flows
// (flows.hpp) and user pipelines can chain them, with optional functional
// verification after every pass (random simulation and/or BDD equivalence
// against the input circuit) — every rewrite in this library is supposed to
// be safe, and the pass manager enforces it.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::core {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Transform the netlist; return a one-line human-readable summary.
  virtual std::string run(Netlist& net) = 0;
};

/// Adapter for lambda passes.
class FnPass final : public Pass {
 public:
  FnPass(std::string name, std::function<std::string(Netlist&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  std::string run(Netlist& net) override { return fn_(net); }

 private:
  std::string name_;
  std::function<std::string(Netlist&)> fn_;
};

struct PassRecord {
  std::string pass;
  std::string summary;
  bool verified = false;
};

class PassManager {
 public:
  /// When true (default), every pass is checked against the pre-pass
  /// circuit with 64k random patterns; a mismatch aborts with an exception.
  explicit PassManager(bool verify = true) : verify_(verify) {}

  void add(std::unique_ptr<Pass> p) { passes_.push_back(std::move(p)); }
  void add(std::string name, std::function<std::string(Netlist&)> fn) {
    passes_.push_back(std::make_unique<FnPass>(std::move(name), std::move(fn)));
  }

  /// Run all passes in order; returns a record per pass.
  std::vector<PassRecord> run(Netlist& net) const;

 private:
  bool verify_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Ready-made passes over this library's techniques.
std::unique_ptr<Pass> make_strash_pass();
std::unique_ptr<Pass> make_sweep_pass();
std::unique_ptr<Pass> make_dontcare_pass();
std::unique_ptr<Pass> make_balance_pass(int buffer_budget = -1);  // -1 = full

}  // namespace lps::core
