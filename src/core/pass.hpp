// pass.hpp — pass manager for netlist-level optimization pipelines.
//
// Wraps the individual techniques behind a uniform interface so flows
// (flows.hpp) and user pipelines can chain them, with functional
// verification and invariant checking after every pass — every rewrite in
// this library is supposed to be safe, and the pass manager enforces it.
//
// Failure containment: a pass that throws, breaks a netlist invariant
// (Netlist::check()/validate()), or changes the circuit function is *rolled
// back* — the pre-pass state is restored, the failure is recorded as a
// Diagnostic on its PassRecord, and the remaining passes still run.  Set
// Options::rollback = false to get the old abort-on-first-failure behavior
// (the failure is then rethrown as diag::CheckError).
//
// Rollback is implemented with the Netlist mutation journal
// (begin_undo/rollback_undo): restoring a failed pass costs O(edit size)
// instead of a whole-netlist deep copy per pass.  Function verification
// compares a pre-pass functional_trace() digest against the post-pass one,
// so no pre-pass clone is kept alive.  Options::use_undo_log = false
// selects the legacy snapshot path (kept for differential testing).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/diag.hpp"
#include "logicopt/bdd_synth.hpp"
#include "logicopt/rewrite/engine.hpp"
#include "netlist/netlist.hpp"
#include "power/activity.hpp"

namespace lps::core {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Transform the netlist; return a one-line human-readable summary.
  virtual std::string run(Netlist& net) = 0;
};

/// Adapter for lambda passes.
class FnPass final : public Pass {
 public:
  FnPass(std::string name, std::function<std::string(Netlist&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  std::string run(Netlist& net) override { return fn_(net); }

 private:
  std::string name_;
  std::function<std::string(Netlist&)> fn_;
};

struct PassRecord {
  std::string pass;
  std::string summary;
  bool verified = false;     // equivalence check ran and passed
  bool ok = true;            // pass ran without throwing/breaking anything
  bool rolled_back = false;  // pre-pass snapshot was restored
  diag::Diagnostic diag;     // why the pass failed (when !ok)
  /// Estimated total power after this pass (Options::estimate_power only;
  /// rolled-back passes report the restored circuit's power).
  double power_w = 0.0;
};

/// True when every record succeeded.
bool all_ok(const std::vector<PassRecord>& records);

class PassManager {
 public:
  struct Options {
    /// Check each pass against the pre-pass circuit with random patterns.
    bool verify = true;
    /// Run the structural invariant checker after every pass.
    bool check_invariants = true;
    /// Contain failures: restore the snapshot and keep going.  When false a
    /// failing pass rethrows (diag::CheckError) after restoring the input.
    bool rollback = true;
    /// Roll back via the Netlist mutation journal (O(edit size)); false
    /// uses the legacy whole-netlist snapshot (O(circuit size)).  Both
    /// restore the identical pre-pass state.
    bool use_undo_log = true;
    std::size_t verify_vectors = 1024;
    std::uint64_t verify_seed = 0xABCD;
    /// Record an estimated power number on every PassRecord.
    bool estimate_power = false;
    /// Estimates go through the cone-scoped incremental analyzer
    /// (power/incremental.hpp), fed by the same mutation journal rollback
    /// uses; false selects a full power::analyze per pass — bit-identical
    /// results, kept for differential testing (like use_undo_log).
    bool use_incremental_power = true;
    /// Analysis options for the per-pass estimate (estimate_power only).
    power::AnalysisOptions estimate;
    /// Candidate-scoring worker threads for optimization passes that go
    /// through logicopt/speculate.hpp (datapath rewriting, window
    /// resynthesis).  Applied as the speculation default for the duration
    /// of run(), so passes built with default options inherit it.  Results
    /// are bit-identical at any value; only wall-clock changes.  0 = the
    /// LPS_OPT_WORKERS environment default.
    int opt_workers = 0;
  };

  explicit PassManager(Options opt) : opt_(opt) {}
  /// Back-compat shorthand: verification on/off, rollback containment on.
  explicit PassManager(bool verify = true) { opt_.verify = verify; }

  const Options& options() const { return opt_; }

  void add(std::unique_ptr<Pass> p) { passes_.push_back(std::move(p)); }
  void add(std::string name, std::function<std::string(Netlist&)> fn) {
    passes_.push_back(std::make_unique<FnPass>(std::move(name), std::move(fn)));
  }

  /// Run all passes in order; returns a record per pass (failed passes are
  /// recorded, rolled back and skipped — the flow continues).
  std::vector<PassRecord> run(Netlist& net) const;

 private:
  Options opt_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Ready-made passes over this library's techniques.
std::unique_ptr<Pass> make_strash_pass();
std::unique_ptr<Pass> make_sweep_pass();
std::unique_ptr<Pass> make_dontcare_pass();
std::unique_ptr<Pass> make_balance_pass(int buffer_budget = -1);  // -1 = full
/// Power-driven datapath rewriting (logicopt/rewrite/engine.hpp).  The
/// engine journals each candidate in a nested undo epoch, which composes
/// with the manager's own pass epoch.
std::unique_ptr<Pass> make_datapath_rewrite_pass(
    logicopt::rewrite::RewriteOptions opt = {});
/// Hybrid BDD→MUX extraction (logicopt/bdd_synth.hpp): per-cone BDDs on
/// the complement-edge manager, activity-weighted sifting, each kept cone
/// proven and power-scored individually.  Candidate epochs nest inside the
/// manager's pass epoch like the datapath engine's.
std::unique_ptr<Pass> make_bdd_synth_pass(logicopt::BddSynthOptions opt = {});

}  // namespace lps::core
