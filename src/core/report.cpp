#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lps::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  auto line = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      os << std::left << std::setw(static_cast<int>(width[c])) << cell
         << " | ";
    }
    os << '\n';
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) line(r);
}

std::string power_line(const power::PowerBreakdown& b) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << "switching "
     << b.switching_w * 1e6 << " uW, short-circuit "
     << b.short_circuit_w * 1e6 << " uW, leakage " << b.leakage_w * 1e6
     << " uW (switching " << std::setprecision(1)
     << b.switching_fraction() * 100.0 << "% of total)";
  return os.str();
}

}  // namespace lps::core
