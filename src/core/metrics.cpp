#include "core/metrics.hpp"

#include <sstream>

namespace lps::core::metrics {

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::add(std::string_view name, double delta) {
  std::lock_guard lk(mu_);
  counters_[std::string(name)] += delta;
}

void Registry::set(std::string_view name, double value) {
  std::lock_guard lk(mu_);
  counters_[std::string(name)] = value;
}

double Registry::value(std::string_view name) const {
  std::lock_guard lk(mu_);
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0.0 : it->second;
}

void Registry::record_stage(std::string_view name, double wall_ms) {
  std::lock_guard lk(mu_);
  counters_["time_ms." + std::string(name)] += wall_ms;
  stages_.push_back({std::string(name), wall_ms});
}

std::map<std::string, double> Registry::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

std::vector<StageEvent> Registry::stages() const {
  std::lock_guard lk(mu_);
  return stages_;
}

void Registry::reset() {
  std::lock_guard lk(mu_);
  counters_.clear();
  stages_.clear();
}

std::string Registry::to_json() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "" : ", ") << '"' << name << "\": " << v;
    first = false;
  }
  os << '}';
  if (!stages_.empty()) {
    os << ", \"stages\": [";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      os << (i ? ", " : "") << "{\"name\": \"" << stages_[i].name
         << "\", \"wall_ms\": " << stages_[i].wall_ms << '}';
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

ScopedTimer::~ScopedTimer() {
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  if (trace_)
    Registry::global().record_stage(name_, ms);
  else
    Registry::global().add("time_ms." + name_, ms);
}

}  // namespace lps::core::metrics
