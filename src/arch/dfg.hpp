// dfg.hpp — data-flow graphs for behavioral synthesis (§IV-B).
//
// "The high-level specification is typically in the form of a data-flow
// graph and a control-flow graph."  Operations carry types matched by the
// module library (modules.hpp); edges carry data dependences.  Builders for
// the standard DSP benchmarks of the cited work (FIR, IIR biquad, elliptic
// wave filter fragment, DCT butterfly) are included so every experiment is
// self-contained.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lps::arch {

enum class OpType : std::uint8_t {
  Input,
  Const,
  Add,
  Sub,
  Mul,
  Shift,  // cheap constant multiply
  Cmp,
  Output,
};

std::string to_string(OpType t);

using OpId = int;

struct Op {
  OpType type = OpType::Add;
  std::vector<OpId> args;
  std::string name;
  std::int64_t const_value = 0;  // for Const
};

class Dfg {
 public:
  explicit Dfg(std::string name) : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  OpId add_input(std::string name);
  OpId add_const(std::int64_t v);
  OpId add_op(OpType t, std::vector<OpId> args, std::string name = {});
  OpId add_output(OpId v, std::string name);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Op& op(OpId i) const { return ops_[i]; }
  const std::vector<OpId>& inputs() const { return inputs_; }
  const std::vector<OpId>& outputs() const { return outputs_; }

  /// Ops in dependency order.
  std::vector<OpId> topo_order() const;
  /// Number of ops of each computational type (Add/Sub/Mul/Shift/Cmp).
  std::vector<std::pair<OpType, int>> op_histogram() const;

  /// Evaluate over int64 (wrap-around) — used to derive realistic operand
  /// traces for the correlation-aware binding of [33,34].
  std::vector<std::int64_t> eval(const std::vector<std::int64_t>& in) const;

 private:
  std::string name_;
  std::vector<Op> ops_;
  std::vector<OpId> inputs_;
  std::vector<OpId> outputs_;
};

/// n-tap FIR filter: y = Σ c_i · x_i (x_i are the delayed samples, provided
/// as separate inputs — one DFG iteration).
Dfg fir_filter(int taps);

/// Direct-form-II biquad IIR section.
Dfg iir_biquad();

/// A 10-operation fragment of the elliptic wave filter benchmark.
Dfg ewf_fragment();

/// 4-point DCT butterfly.
Dfg dct_butterfly();

/// Two independent FIR channels in one DFG (stereo processing): operations
/// from the two channels carry uncorrelated value streams, so hardware
/// sharing decisions have a large switched-capacitance spread — the
/// binding experiment of [33,34].
Dfg dual_fir(int taps);

}  // namespace lps::arch
