#include "arch/transforms.hpp"

#include "arch/scheduling.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::arch {

Dfg unroll(const Dfg& g, int k) {
  if (k < 1) throw std::invalid_argument("unroll: k < 1");
  Dfg out(g.name() + "_x" + std::to_string(k));
  for (int copy = 0; copy < k; ++copy) {
    std::vector<OpId> map(g.num_ops(), -1);
    for (OpId i : g.topo_order()) {
      const Op& o = g.op(i);
      switch (o.type) {
        case OpType::Input:
          map[i] = out.add_input(o.name + "_" + std::to_string(copy));
          break;
        case OpType::Const:
          map[i] = out.add_const(o.const_value);
          break;
        case OpType::Output:
          map[i] = out.add_output(map[o.args[0]],
                                  o.name + "_" + std::to_string(copy));
          break;
        default: {
          std::vector<OpId> args;
          for (OpId a : o.args) args.push_back(map[a]);
          map[i] = out.add_op(o.type, std::move(args), o.name);
        }
      }
    }
  }
  return out;
}

Dfg tree_height_reduction(const Dfg& g) {
  // Identify maximal chains x1 + x2 + ... (+ is 2-input Add, each interior
  // node single-use) and rebuild them as balanced trees.
  Dfg out(g.name() + "_thr");
  int n = g.num_ops();
  std::vector<int> uses(n, 0);
  for (int i = 0; i < n; ++i)
    for (OpId a : g.op(i).args) uses[a] += 1;

  std::vector<OpId> map(n, -1);
  // Collect, for each op, the leaves of its maximal Add chain.
  auto chain_leaves = [&](OpId root, auto&& self) -> std::vector<OpId> {
    std::vector<OpId> leaves;
    for (OpId a : g.op(root).args) {
      if (g.op(a).type == OpType::Add && uses[a] == 1) {
        auto sub = self(a, self);
        leaves.insert(leaves.end(), sub.begin(), sub.end());
      } else {
        leaves.push_back(a);
      }
    }
    return leaves;
  };

  std::vector<bool> absorbed(n, false);
  // Mark interior chain nodes (they disappear into the tree rebuild).
  for (int i = 0; i < n; ++i) {
    if (g.op(i).type != OpType::Add) continue;
    for (OpId a : g.op(i).args)
      if (g.op(a).type == OpType::Add && uses[a] == 1) absorbed[a] = true;
  }

  for (OpId i : g.topo_order()) {
    const Op& o = g.op(i);
    if (absorbed[i]) continue;  // rebuilt inside the root's tree
    switch (o.type) {
      case OpType::Input:
        map[i] = out.add_input(o.name);
        break;
      case OpType::Const:
        map[i] = out.add_const(o.const_value);
        break;
      case OpType::Output:
        map[i] = out.add_output(map[o.args[0]], o.name);
        break;
      case OpType::Add: {
        auto leaves = chain_leaves(i, chain_leaves);
        std::vector<OpId> level;
        for (OpId l : leaves) level.push_back(map[l]);
        while (level.size() > 1) {
          std::vector<OpId> next;
          for (std::size_t p = 0; p + 1 < level.size(); p += 2)
            next.push_back(out.add_op(OpType::Add, {level[p], level[p + 1]}));
          if (level.size() % 2) next.push_back(level.back());
          level = std::move(next);
        }
        map[i] = level[0];
        break;
      }
      default: {
        std::vector<OpId> args;
        for (OpId a : o.args) args.push_back(map[a]);
        map[i] = out.add_op(o.type, std::move(args), o.name);
      }
    }
  }
  return out;
}

VoltageGain evaluate_voltage_gain(const Dfg& reference, const Dfg& transformed,
                                  int samples_per_pass,
                                  const ModuleLibrary& lib,
                                  const VoltageModel& vm) {
  auto pick_fastest = [&](const Dfg& g) {
    std::vector<const Module*> c(g.num_ops(), nullptr);
    for (int i = 0; i < g.num_ops(); ++i) {
      OpType t = g.op(i).type;
      if (t == OpType::Input || t == OpType::Const || t == OpType::Output)
        continue;
      c[i] = lib.fastest(t);
    }
    return c;
  };
  auto energy_of = [&](const Dfg& g, const std::vector<const Module*>& c) {
    double e = 0;
    for (int i = 0; i < g.num_ops(); ++i)
      if (c[i]) e += c[i]->energy_pj;
    return e;
  };

  VoltageGain r;
  r.samples_per_pass = samples_per_pass;
  auto cr = pick_fastest(reference);
  auto ct = pick_fastest(transformed);
  r.cs_reference = asap(reference, cr).length_cs;
  r.cs_transformed = asap(transformed, ct).length_cs;
  // Per-sample time budget = reference pass; transformed pass may take
  // samples_per_pass times that budget.
  double budget = static_cast<double>(r.cs_reference) * samples_per_pass;
  r.slack = budget / std::max(1, r.cs_transformed);
  r.vdd = vm.min_vdd_for_slack(r.slack);
  double e_ref = energy_of(reference, cr);
  double e_tr = energy_of(transformed, ct) / samples_per_pass;
  r.capacitance_factor = e_ref > 0 ? e_tr / e_ref : 1.0;
  r.power_ratio = r.capacitance_factor * vm.power_factor(r.vdd);
  return r;
}

}  // namespace lps::arch
