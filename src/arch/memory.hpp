// memory.hpp — memory power and control-flow transformations (§IV-B).
//
// Catthoor et al. [14]: "memory accesses consume a lot of power, especially
// if the access is off-chip, and ... the greater the size of memory, the
// greater is the capacitance that switches per access.  Control flow
// transformations, such as loop reordering, are presented to try to
// minimize the memory component of the overall system power."
//
// We model a small on-chip buffer (direct-mapped cache) in front of a large
// off-chip memory; loop reorderings of a matrix-multiply kernel generate
// different address streams, and the energy gap between orders is the
// paper's effect.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lps::arch {

struct MemoryParams {
  int cache_lines = 64;
  int words_per_line = 4;
  double e_hit_pj = 2.0;          // on-chip buffer access
  double e_miss_pj = 40.0;        // off-chip access (line fill)
  double e_per_kword_size_pj = 0.2;  // size-dependent per-access adder
  double offchip_kwords = 64.0;
};

struct MemoryEnergy {
  std::size_t accesses = 0;
  std::size_t misses = 0;
  double energy_pj = 0.0;
  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / accesses : 0.0;
  }
};

/// Direct-mapped cache simulation of a word-address stream.
MemoryEnergy simulate_memory(const std::vector<std::uint32_t>& addresses,
                             const MemoryParams& p = {});

/// Word-address streams of C = A×B for n×n matrices under different loop
/// orders.  A at base 0, B at n², C at 2n²; row-major layout.
enum class LoopOrder { IJK, IKJ, JKI };
std::string to_string(LoopOrder o);
std::vector<std::uint32_t> matmul_addresses(int n, LoopOrder order);

/// Tiled (blocked) ijk with the given tile size.
std::vector<std::uint32_t> matmul_addresses_tiled(int n, int tile);

}  // namespace lps::arch
