// voltage.hpp — supply-voltage scaling model (§IV-B).
//
// "Slower clocks can then be used for the same throughput, enabling the use
// of lower supply voltages.  The quadratic decrease in power consumption can
// compensate for the additional capacitance introduced due to
// transformations that increase concurrency" [7].  CMOS gate delay follows
// the alpha-power law  d ∝ V / (V - V_t)^α; power follows C·V².

#pragma once

namespace lps::arch {

struct VoltageModel {
  double vnom = 5.0;   // nominal supply
  double vt = 0.8;     // threshold voltage
  double alpha = 1.6;  // velocity-saturation exponent
  double vmin = 1.2;   // lowest usable supply

  /// Delay at `v` relative to the delay at vnom (1.0 at vnom, grows as v
  /// drops).
  double delay_factor(double v) const;
  /// Dynamic power at `v` relative to vnom for *identical* activity and
  /// capacitance: (v / vnom)^2.
  double power_factor(double v) const;
  /// Lowest supply whose delay factor stays <= `slack` (bisection; returns
  /// vnom when slack < 1).
  double min_vdd_for_slack(double slack) const;
};

}  // namespace lps::arch
