// modules.hpp — execution-unit library with power/delay variants (§IV-B).
//
// "If a number of modules, with a range of power/delay costs, is available
// for implementing the given operation types, an appropriate choice of
// modules can lead to lower power costs for the same performance"
// (Goodby, Orailoglu & Chau [17]).  Each module implements one OpType with
// a latency in control steps and an energy per activation; variants trade
// the two (ripple vs carry-select adders, array vs Booth multipliers).

#pragma once

#include <string>
#include <vector>

#include "arch/dfg.hpp"

namespace lps::arch {

struct Module {
  std::string name;
  OpType op;
  int latency_cs = 1;       // control steps per operation
  double energy_pj = 1.0;   // energy per activation at nominal V_DD
  double area = 1.0;
};

struct ModuleLibrary {
  std::vector<Module> modules;

  /// Variants implementing `op`, fastest first.
  std::vector<const Module*> variants(OpType op) const;
  const Module* fastest(OpType op) const;
  const Module* most_efficient(OpType op) const;
};

/// Representative datapath library (16-bit units, 0.8um-class numbers):
/// adders (ripple/select/lookahead), subtractor, multipliers (array/Booth/
/// serial), shifter, comparator.
ModuleLibrary standard_module_library();

/// Module selection of [17]: pick, for each operation in the DFG, a module
/// variant such that the schedule still meets `deadline_cs` control steps
/// under unlimited resources (list scheduling re-checked after each demote),
/// minimizing total energy per DFG evaluation.
struct ModuleSelection {
  std::vector<const Module*> choice;  // per op id (nullptr for non-exec ops)
  double energy_pj = 0.0;
  int schedule_length_cs = 0;
};
ModuleSelection select_modules(const Dfg& g, const ModuleLibrary& lib,
                               int deadline_cs);

}  // namespace lps::arch
