#include "arch/macromodel.hpp"

#include <cmath>
#include <stdexcept>

#include "power/power_model.hpp"
#include "sim/logicsim.hpp"

namespace lps::arch {

namespace {

double mean_toggle_rate(const StatPoint& probs) {
  double t = 0.0;
  for (double p : probs) t += 2.0 * p * (1.0 - p);
  return probs.empty() ? 0.0 : t / static_cast<double>(probs.size());
}

}  // namespace

double gate_level_cap_ff(const Netlist& module, const StatPoint& probs,
                         std::size_t n_vectors, std::uint64_t seed) {
  if (probs.size() != module.inputs().size())
    throw std::invalid_argument("gate_level_cap_ff: stat width mismatch");
  auto st = sim::measure_activity(module, std::max<std::size_t>(2, n_vectors / 64),
                                  seed, probs);
  power::PowerParams pp;
  double cap = 0.0;
  for (NodeId id = 0; id < module.size(); ++id) {
    if (module.is_dead(id)) continue;
    cap += power::node_capacitance(module, id, pp) * 1e15 *
           st.transition_prob[id];
  }
  return cap;
}

PfaModel calibrate_pfa(const Netlist& module, std::size_t n_vectors) {
  StatPoint uniform(module.inputs().size(), 0.5);
  return {gate_level_cap_ff(module, uniform, n_vectors)};
}

ActivityModel calibrate_activity_model(const Netlist& module,
                                       const std::vector<StatPoint>& training,
                                       std::size_t n_vectors) {
  // Least squares fit of cap = c0 + c1 * mean_toggle_rate over training.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double n = static_cast<double>(training.size());
  for (const auto& pt : training) {
    double x = mean_toggle_rate(pt);
    double y = gate_level_cap_ff(module, pt, n_vectors);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  ActivityModel m;
  double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    m.c0_ff = n > 0 ? sy / n : 0.0;
    m.c1_ff = 0.0;
  } else {
    m.c1_ff = (n * sxy - sx * sy) / denom;
    m.c0_ff = (sy - m.c1_ff * sx) / n;
  }
  return m;
}

MacroModelEval evaluate_macromodels(const Netlist& module,
                                    const std::vector<StatPoint>& training,
                                    const std::vector<StatPoint>& test,
                                    std::size_t n_vectors) {
  MacroModelEval ev;
  ev.module = module.name();
  PfaModel pfa = calibrate_pfa(module, n_vectors);
  ActivityModel act = calibrate_activity_model(module, training, n_vectors);
  double epfa = 0, eact = 0;
  for (const auto& pt : test) {
    // Distinct seed: the truth run must be independent of calibration.
    double truth = gate_level_cap_ff(module, pt, n_vectors, 1234567);
    if (truth <= 0) continue;
    double pred_pfa = pfa.cap_per_activation_ff;
    double pred_act = act.c0_ff + act.c1_ff * mean_toggle_rate(pt);
    epfa += std::abs(pred_pfa - truth) / truth;
    eact += std::abs(pred_act - truth) / truth;
  }
  double n = static_cast<double>(test.size());
  ev.mean_abs_err_pfa = n > 0 ? epfa / n : 0.0;
  ev.mean_abs_err_activity = n > 0 ? eact / n : 0.0;
  return ev;
}

namespace {

// Compose: B's first inputs are driven by A's outputs; the rest stay PIs.
Netlist compose(const Netlist& a, const Netlist& b) {
  Netlist n(a.name() + "_into_" + b.name());
  std::vector<NodeId> amap(a.size(), kNoNode);
  for (NodeId id : a.topo_order()) {
    const Node& nd = a.node(id);
    if (nd.type == GateType::Input) {
      amap[id] = n.add_input("a_" + nd.name);
    } else if (nd.type == GateType::Const0) {
      amap[id] = n.add_const(false);
    } else if (nd.type == GateType::Const1) {
      amap[id] = n.add_const(true);
    } else if (nd.type == GateType::Dff) {
      amap[id] = n.add_dff(n.add_const(false), nd.init_value);
    } else {
      std::vector<NodeId> fi;
      for (NodeId f : nd.fanins) fi.push_back(amap[f]);
      amap[id] = n.add_gate(nd.type, std::move(fi));
    }
  }
  std::vector<NodeId> bmap(b.size(), kNoNode);
  std::size_t feed = 0;
  for (NodeId id : b.topo_order()) {
    const Node& nd = b.node(id);
    if (nd.type == GateType::Input) {
      bmap[id] = feed < a.outputs().size()
                     ? amap[a.outputs()[feed++]]
                     : n.add_input("b_" + nd.name);
    } else if (nd.type == GateType::Const0) {
      bmap[id] = n.add_const(false);
    } else if (nd.type == GateType::Const1) {
      bmap[id] = n.add_const(true);
    } else if (nd.type == GateType::Dff) {
      bmap[id] = n.add_dff(n.add_const(false), nd.init_value);
    } else {
      std::vector<NodeId> fi;
      for (NodeId f : nd.fanins) fi.push_back(bmap[f]);
      bmap[id] = n.add_gate(nd.type, std::move(fi));
    }
  }
  const auto& outs = b.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i)
    n.add_output(bmap[outs[i]], b.output_names()[i]);
  return n;
}

}  // namespace

AdditiveModelEval evaluate_additive_model(const Netlist& a, const Netlist& b,
                                          std::size_t n_vectors) {
  AdditiveModelEval ev;
  ev.additive_cap_ff = calibrate_pfa(a, n_vectors).cap_per_activation_ff +
                       calibrate_pfa(b, n_vectors).cap_per_activation_ff;
  Netlist joint = compose(a, b);
  StatPoint uniform(joint.inputs().size(), 0.5);
  ev.truth_cap_ff = gate_level_cap_ff(joint, uniform, n_vectors, 777);
  ev.relative_error =
      ev.truth_cap_ff > 0
          ? (ev.additive_cap_ff - ev.truth_cap_ff) / ev.truth_cap_ff
          : 0.0;
  return ev;
}

}  // namespace lps::arch
