// scheduling.hpp — operation scheduling (§IV-B).
//
// ASAP/ALAP bounds and resource-constrained list scheduling.  Power enters
// through two doors: (a) fewer control steps enable voltage scaling at
// fixed throughput ([7]; see voltage.hpp), and (b) the schedule determines
// how many units are simultaneously active and how values map onto shared
// hardware (binding.hpp).

#pragma once

#include <map>
#include <vector>

#include "arch/dfg.hpp"
#include "arch/modules.hpp"

namespace lps::arch {

struct Schedule {
  std::vector<int> start_cs;   // per op
  std::vector<int> finish_cs;  // per op
  int length_cs = 0;
};

/// As-soon-as-possible schedule with per-op module latencies.
Schedule asap(const Dfg& g, const std::vector<const Module*>& choice);

/// As-late-as-possible within `deadline_cs`.
Schedule alap(const Dfg& g, const std::vector<const Module*>& choice,
              int deadline_cs);

/// List scheduling under resource bounds (`limits[op]` = unit count for
/// that op type; missing entry = unlimited).  Priority = ALAP slack.
Schedule list_schedule(const Dfg& g, const std::vector<const Module*>& choice,
                       const std::map<OpType, int>& limits);

/// Peak number of concurrently-busy units of each type.
std::map<OpType, int> peak_usage(const Dfg& g,
                                 const std::vector<const Module*>& choice,
                                 const Schedule& s);

}  // namespace lps::arch
