#include "arch/voltage.hpp"

#include <cmath>

namespace lps::arch {

double VoltageModel::delay_factor(double v) const {
  auto d = [&](double vdd) {
    return vdd / std::pow(vdd - vt, alpha);
  };
  return d(v) / d(vnom);
}

double VoltageModel::power_factor(double v) const {
  return (v / vnom) * (v / vnom);
}

double VoltageModel::min_vdd_for_slack(double slack) const {
  if (slack <= 1.0) return vnom;
  double lo = vmin, hi = vnom;
  if (delay_factor(lo) <= slack) return lo;
  for (int i = 0; i < 60; ++i) {
    double mid = 0.5 * (lo + hi);
    if (delay_factor(mid) <= slack)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace lps::arch
