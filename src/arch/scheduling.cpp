#include "arch/scheduling.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::arch {

namespace {

bool is_exec(OpType t) {
  return t != OpType::Input && t != OpType::Const && t != OpType::Output;
}

int latency(const Dfg& g, const std::vector<const Module*>& choice, OpId i) {
  return is_exec(g.op(i).type) && choice[i] ? choice[i]->latency_cs : 0;
}

std::string op_desc(const Dfg& g, OpId i) {
  std::string s = "op " + std::to_string(i) + " (" + to_string(g.op(i).type);
  if (!g.op(i).name.empty()) s += " \"" + g.op(i).name + "\"";
  s += ')';
  return s;
}

// Ops whose dependencies can never all complete — the members (and
// downstream victims) of dependency cycles.  Kahn-style elimination: drop
// ops whose args are all schedulable; whatever remains is stuck.
std::vector<OpId> unschedulable_ops(const Dfg& g) {
  std::vector<bool> ok(g.num_ops(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (OpId i = 0; i < g.num_ops(); ++i) {
      if (ok[i]) continue;
      bool ready = true;
      for (OpId a : g.op(i).args)
        if (a < 0 || a >= g.num_ops() || !ok[a]) {
          ready = false;
          break;
        }
      if (ready) {
        ok[i] = true;
        changed = true;
      }
    }
  }
  std::vector<OpId> stuck;
  for (OpId i = 0; i < g.num_ops(); ++i)
    if (!ok[i]) stuck.push_back(i);
  return stuck;
}

// One actual cycle among the stuck ops, formatted "op a -> op b -> op a".
std::string describe_cycle(const Dfg& g, const std::vector<OpId>& stuck) {
  std::vector<bool> in_stuck(g.num_ops(), false);
  for (OpId i : stuck) in_stuck[i] = true;
  // Walk args staying inside the stuck set until an op repeats.
  std::vector<int> visited_at(g.num_ops(), -1);
  std::vector<OpId> path;
  OpId cur = stuck.empty() ? -1 : stuck.front();
  while (cur >= 0 && visited_at[cur] < 0) {
    visited_at[cur] = static_cast<int>(path.size());
    path.push_back(cur);
    OpId next = -1;
    for (OpId a : g.op(cur).args)
      if (a >= 0 && a < g.num_ops() && in_stuck[a]) {
        next = a;
        break;
      }
    cur = next;
  }
  if (cur < 0) return "(cycle not recovered)";
  std::string s;
  for (std::size_t k = visited_at[cur]; k < path.size(); ++k)
    s += op_desc(g, path[k]) + " -> ";
  return s + op_desc(g, cur);
}

}  // namespace

Schedule asap(const Dfg& g, const std::vector<const Module*>& choice) {
  Schedule s;
  s.start_cs.assign(g.num_ops(), 0);
  s.finish_cs.assign(g.num_ops(), 0);
  for (OpId i : g.topo_order()) {
    int st = 0;
    for (OpId a : g.op(i).args) st = std::max(st, s.finish_cs[a]);
    s.start_cs[i] = st;
    s.finish_cs[i] = st + latency(g, choice, i);
    s.length_cs = std::max(s.length_cs, s.finish_cs[i]);
  }
  return s;
}

Schedule alap(const Dfg& g, const std::vector<const Module*>& choice,
              int deadline_cs) {
  Schedule s;
  s.start_cs.assign(g.num_ops(), deadline_cs);
  s.finish_cs.assign(g.num_ops(), deadline_cs);
  auto order = g.topo_order();
  // Build user lists.
  std::vector<std::vector<OpId>> users(g.num_ops());
  for (OpId i : order)
    for (OpId a : g.op(i).args) users[a].push_back(i);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    OpId i = *it;
    int fin = deadline_cs;
    for (OpId u : users[i]) fin = std::min(fin, s.start_cs[u]);
    s.finish_cs[i] = fin;
    s.start_cs[i] = fin - latency(g, choice, i);
  }
  s.length_cs = deadline_cs;
  return s;
}

Schedule list_schedule(const Dfg& g, const std::vector<const Module*>& choice,
                       const std::map<OpType, int>& limits) {
  // A cyclic DFG would spin the ready loop forever; diagnose it upfront and
  // name the ops that form the cycle rather than timing out.
  if (auto stuck = unschedulable_ops(g); !stuck.empty()) {
    std::string who;
    for (OpId i : stuck) {
      if (!who.empty()) who += ", ";
      who += op_desc(g, i);
    }
    throw std::logic_error("list_schedule: " + std::to_string(stuck.size()) +
                           " op(s) can never be scheduled [" + who +
                           "]; dependency cycle: " + describe_cycle(g, stuck));
  }
  Schedule a = asap(g, choice);
  Schedule l = alap(g, choice, a.length_cs);
  Schedule s;
  s.start_cs.assign(g.num_ops(), -1);
  s.finish_cs.assign(g.num_ops(), -1);

  // Non-exec ops are free: schedule at their dependency frontier.
  // Candidate order: by ALAP start (least slack first), topo as tie-break,
  // which is the classic list-scheduling priority.
  std::vector<OpId> order = g.topo_order();
  std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return l.start_cs[a] < l.start_cs[b];
  });
  std::vector<bool> done(g.num_ops(), false);
  int scheduled = 0, total = g.num_ops();

  int cs = 0;
  std::map<OpType, std::vector<int>> busy_until;  // per unit instance
  for (auto& [t, k] : limits) busy_until[t].assign(k, 0);

  while (scheduled < total) {
    bool any = false;
    for (OpId i : order) {
      if (done[i]) continue;
      // Dependencies done and finished by now?
      bool ready = true;
      int dep_fin = 0;
      for (OpId arg : g.op(i).args) {
        if (!done[arg]) {
          ready = false;
          break;
        }
        dep_fin = std::max(dep_fin, s.finish_cs[arg]);
      }
      if (!ready || dep_fin > cs) continue;
      OpType t = g.op(i).type;
      if (!is_exec(t)) {
        s.start_cs[i] = cs;
        s.finish_cs[i] = cs;
        done[i] = true;
        ++scheduled;
        any = true;
        continue;
      }
      int lat = latency(g, choice, i);
      auto it = busy_until.find(t);
      if (it == busy_until.end()) {
        s.start_cs[i] = cs;
        s.finish_cs[i] = cs + lat;
        done[i] = true;
        ++scheduled;
        any = true;
        continue;
      }
      // Find a free unit; prefer scheduling the least-slack ready op first:
      // iterate ready ops by ALAP start.
      int unit = -1;
      for (std::size_t u = 0; u < it->second.size(); ++u)
        if (it->second[u] <= cs) {
          unit = static_cast<int>(u);
          break;
        }
      if (unit < 0) continue;  // all units busy this step
      s.start_cs[i] = cs;
      s.finish_cs[i] = cs + lat;
      it->second[unit] = cs + lat;
      done[i] = true;
      ++scheduled;
      any = true;
    }
    if (!any) ++cs;
    // Cycles are rejected upfront; this bound only guards against resource
    // tables that can never admit an op (e.g. a limit of 0 units).
    if (cs > 100000)
      throw std::logic_error(
          "list_schedule: no progress after 100000 control steps — "
          "a resource limit of 0 units blocks a required op type?");
  }
  for (int f : s.finish_cs) s.length_cs = std::max(s.length_cs, f);
  return s;
}

std::map<OpType, int> peak_usage(const Dfg& g,
                                 const std::vector<const Module*>& choice,
                                 const Schedule& s) {
  std::map<OpType, int> peak;
  for (int cs = 0; cs < s.length_cs; ++cs) {
    std::map<OpType, int> now;
    for (int i = 0; i < g.num_ops(); ++i) {
      OpType t = g.op(i).type;
      if (!is_exec(t)) continue;
      if (s.start_cs[i] <= cs && cs < s.finish_cs[i]) now[t] += 1;
    }
    for (auto& [t, k] : now) peak[t] = std::max(peak[t], k);
  }
  (void)choice;
  return peak;
}

}  // namespace lps::arch
