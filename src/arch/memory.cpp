#include "arch/memory.hpp"

#include <algorithm>

namespace lps::arch {

MemoryEnergy simulate_memory(const std::vector<std::uint32_t>& addresses,
                             const MemoryParams& p) {
  MemoryEnergy e;
  std::vector<std::int64_t> tag(p.cache_lines, -1);
  for (std::uint32_t a : addresses) {
    std::uint32_t line_addr = a / p.words_per_line;
    int index = static_cast<int>(line_addr % p.cache_lines);
    ++e.accesses;
    if (tag[index] == static_cast<std::int64_t>(line_addr)) {
      e.energy_pj += p.e_hit_pj;
    } else {
      tag[index] = line_addr;
      ++e.misses;
      e.energy_pj +=
          p.e_miss_pj + p.e_per_kword_size_pj * p.offchip_kwords;
    }
  }
  return e;
}

std::string to_string(LoopOrder o) {
  switch (o) {
    case LoopOrder::IJK: return "ijk";
    case LoopOrder::IKJ: return "ikj";
    case LoopOrder::JKI: return "jki";
  }
  return "?";
}

std::vector<std::uint32_t> matmul_addresses(int n, LoopOrder order) {
  std::vector<std::uint32_t> s;
  s.reserve(static_cast<std::size_t>(n) * n * n * 3);
  auto A = [&](int i, int k) { return static_cast<std::uint32_t>(i * n + k); };
  auto B = [&](int k, int j) {
    return static_cast<std::uint32_t>(n * n + k * n + j);
  };
  auto C = [&](int i, int j) {
    return static_cast<std::uint32_t>(2 * n * n + i * n + j);
  };
  auto body = [&](int i, int j, int k) {
    s.push_back(A(i, k));
    s.push_back(B(k, j));
    s.push_back(C(i, j));  // read-modify-write counted once
  };
  switch (order) {
    case LoopOrder::IJK:
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
          for (int k = 0; k < n; ++k) body(i, j, k);
      break;
    case LoopOrder::IKJ:
      for (int i = 0; i < n; ++i)
        for (int k = 0; k < n; ++k)
          for (int j = 0; j < n; ++j) body(i, j, k);
      break;
    case LoopOrder::JKI:
      for (int j = 0; j < n; ++j)
        for (int k = 0; k < n; ++k)
          for (int i = 0; i < n; ++i) body(i, j, k);
      break;
  }
  return s;
}

std::vector<std::uint32_t> matmul_addresses_tiled(int n, int tile) {
  std::vector<std::uint32_t> s;
  auto A = [&](int i, int k) { return static_cast<std::uint32_t>(i * n + k); };
  auto B = [&](int k, int j) {
    return static_cast<std::uint32_t>(n * n + k * n + j);
  };
  auto C = [&](int i, int j) {
    return static_cast<std::uint32_t>(2 * n * n + i * n + j);
  };
  for (int i0 = 0; i0 < n; i0 += tile)
    for (int j0 = 0; j0 < n; j0 += tile)
      for (int k0 = 0; k0 < n; k0 += tile)
        for (int i = i0; i < std::min(i0 + tile, n); ++i)
          for (int j = j0; j < std::min(j0 + tile, n); ++j)
            for (int k = k0; k < std::min(k0 + tile, n); ++k) {
              s.push_back(A(i, k));
              s.push_back(B(k, j));
              s.push_back(C(i, j));
            }
  return s;
}

}  // namespace lps::arch
