// macromodel.hpp — architecture-level power macro-models (§IV-A).
//
// Three model classes from the survey, all calibrated against this
// library's own gate-level power analysis (the "lower level analysis tools"
// the survey says the models are built from):
//   - PFA [15]: one capacitance-per-activation constant per module,
//     characterized with random input streams;
//   - activity-sensitive black-box models [21,22]: "known signal statistics
//     are used to obtain models that are more accurate than those obtained
//     from using random input streams" — a linear model in the module's
//     mean input toggle rate, fitted over a set of training statistics;
//   - additive per-module costs [36]: module constants summed over the
//     active modules of a computation, ignoring inter-module correlation.
// evaluate_macromodels() reports each model's error against gate-level
// truth on unseen input statistics — experiment E13.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::arch {

/// One input-statistics point: per-PI one-probability (toggle rate for iid
/// streams is 2p(1-p)).
using StatPoint = std::vector<double>;

struct PfaModel {
  double cap_per_activation_ff = 0.0;  // switched capacitance per cycle
};

struct ActivityModel {
  double c0_ff = 0.0;  // intercept
  double c1_ff = 0.0;  // slope vs mean input toggle rate
};

/// Gate-level "truth": switched capacitance per cycle (fF) of the module
/// under iid inputs with the given one-probabilities.
double gate_level_cap_ff(const Netlist& module, const StatPoint& probs,
                         std::size_t n_vectors = 4096,
                         std::uint64_t seed = 31);

PfaModel calibrate_pfa(const Netlist& module, std::size_t n_vectors = 4096);

ActivityModel calibrate_activity_model(const Netlist& module,
                                       const std::vector<StatPoint>& training,
                                       std::size_t n_vectors = 4096);

struct MacroModelEval {
  std::string module;
  double mean_abs_err_pfa = 0.0;       // relative error vs gate level
  double mean_abs_err_activity = 0.0;
};

/// Fit both models on `training` statistics and score them on `test`.
MacroModelEval evaluate_macromodels(const Netlist& module,
                                    const std::vector<StatPoint>& training,
                                    const std::vector<StatPoint>& test,
                                    std::size_t n_vectors = 4096);

struct AdditiveModelEval {
  double truth_cap_ff = 0.0;       // joint gate-level simulation of A -> B
  double additive_cap_ff = 0.0;    // PFA(A) + PFA(B), modules in isolation
  double relative_error = 0.0;     // (additive - truth) / truth
};

/// The [36] approach: "average power costs are assigned to individual
/// modules, in isolation from other modules ... this method ignores the
/// correlations between the activities of different modules."  We wire
/// module A's outputs into module B's inputs (extra B inputs stay primary),
/// then compare the additive isolated-module estimate against joint
/// simulation of the composed system.
AdditiveModelEval evaluate_additive_model(const Netlist& a, const Netlist& b,
                                          std::size_t n_vectors = 4096);

}  // namespace lps::arch
