#include "arch/dfg.hpp"

#include <map>
#include <stdexcept>

namespace lps::arch {

std::string to_string(OpType t) {
  switch (t) {
    case OpType::Input: return "in";
    case OpType::Const: return "const";
    case OpType::Add: return "add";
    case OpType::Sub: return "sub";
    case OpType::Mul: return "mul";
    case OpType::Shift: return "shift";
    case OpType::Cmp: return "cmp";
    case OpType::Output: return "out";
  }
  return "?";
}

OpId Dfg::add_input(std::string name) {
  ops_.push_back({OpType::Input, {}, std::move(name), 0});
  inputs_.push_back(num_ops() - 1);
  return num_ops() - 1;
}

OpId Dfg::add_const(std::int64_t v) {
  ops_.push_back({OpType::Const, {}, "c" + std::to_string(v), v});
  return num_ops() - 1;
}

OpId Dfg::add_op(OpType t, std::vector<OpId> args, std::string name) {
  for (OpId a : args)
    if (a < 0 || a >= num_ops()) throw std::invalid_argument("dfg: bad arg");
  ops_.push_back({t, std::move(args), std::move(name), 0});
  return num_ops() - 1;
}

OpId Dfg::add_output(OpId v, std::string name) {
  ops_.push_back({OpType::Output, {v}, std::move(name), 0});
  outputs_.push_back(num_ops() - 1);
  return num_ops() - 1;
}

std::vector<OpId> Dfg::topo_order() const {
  // Construction order is already topological (args must pre-exist).
  std::vector<OpId> r(num_ops());
  for (int i = 0; i < num_ops(); ++i) r[i] = i;
  return r;
}

std::vector<std::pair<OpType, int>> Dfg::op_histogram() const {
  std::map<OpType, int> h;
  for (const auto& o : ops_)
    if (o.type != OpType::Input && o.type != OpType::Const &&
        o.type != OpType::Output)
      h[o.type] += 1;
  return {h.begin(), h.end()};
}

std::vector<std::int64_t> Dfg::eval(
    const std::vector<std::int64_t>& in) const {
  if (in.size() != inputs_.size())
    throw std::invalid_argument("dfg::eval: input count mismatch");
  std::vector<std::int64_t> v(num_ops(), 0);
  std::size_t next_in = 0;
  for (int i = 0; i < num_ops(); ++i) {
    const Op& o = ops_[i];
    switch (o.type) {
      case OpType::Input:
        v[i] = in[next_in++];
        break;
      case OpType::Const:
        v[i] = o.const_value;
        break;
      case OpType::Add:
        v[i] = v[o.args[0]] + v[o.args[1]];
        break;
      case OpType::Sub:
        v[i] = v[o.args[0]] - v[o.args[1]];
        break;
      case OpType::Mul:
        v[i] = v[o.args[0]] * v[o.args[1]];
        break;
      case OpType::Shift:
        v[i] = v[o.args[0]] << (o.args.size() > 1 ? (v[o.args[1]] & 7) : 1);
        break;
      case OpType::Cmp:
        v[i] = v[o.args[0]] > v[o.args[1]] ? 1 : 0;
        break;
      case OpType::Output:
        v[i] = v[o.args[0]];
        break;
    }
  }
  return v;
}

Dfg fir_filter(int taps) {
  Dfg g("fir" + std::to_string(taps));
  std::vector<OpId> x, c;
  for (int i = 0; i < taps; ++i) x.push_back(g.add_input("x" + std::to_string(i)));
  for (int i = 0; i < taps; ++i) c.push_back(g.add_const(3 + 2 * i));
  std::vector<OpId> prods;
  for (int i = 0; i < taps; ++i)
    prods.push_back(g.add_op(OpType::Mul, {x[i], c[i]}));
  // Balanced adder tree.
  std::vector<OpId> level = prods;
  while (level.size() > 1) {
    std::vector<OpId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(g.add_op(OpType::Add, {level[i], level[i + 1]}));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }
  g.add_output(level[0], "y");
  return g;
}

Dfg iir_biquad() {
  Dfg g("biquad");
  OpId x = g.add_input("x");
  OpId w1 = g.add_input("w1");  // state from previous iterations
  OpId w2 = g.add_input("w2");
  OpId a1 = g.add_const(-3);
  OpId a2 = g.add_const(2);
  OpId b0 = g.add_const(5);
  OpId b1 = g.add_const(7);
  OpId b2 = g.add_const(1);
  OpId t1 = g.add_op(OpType::Mul, {a1, w1});
  OpId t2 = g.add_op(OpType::Mul, {a2, w2});
  OpId s1 = g.add_op(OpType::Sub, {x, t1});
  OpId w0 = g.add_op(OpType::Sub, {s1, t2});
  OpId u0 = g.add_op(OpType::Mul, {b0, w0});
  OpId u1 = g.add_op(OpType::Mul, {b1, w1});
  OpId u2 = g.add_op(OpType::Mul, {b2, w2});
  OpId v1 = g.add_op(OpType::Add, {u0, u1});
  OpId y = g.add_op(OpType::Add, {v1, u2});
  g.add_output(y, "y");
  g.add_output(w0, "w0_next");
  return g;
}

Dfg ewf_fragment() {
  Dfg g("ewf");
  OpId in = g.add_input("in");
  std::vector<OpId> s;
  for (int i = 0; i < 4; ++i) s.push_back(g.add_input("s" + std::to_string(i)));
  OpId k1 = g.add_const(3);
  OpId k2 = g.add_const(5);
  OpId a0 = g.add_op(OpType::Add, {in, s[0]});
  OpId m0 = g.add_op(OpType::Mul, {a0, k1});
  OpId a1 = g.add_op(OpType::Add, {m0, s[1]});
  OpId a2 = g.add_op(OpType::Add, {a1, s[2]});
  OpId m1 = g.add_op(OpType::Mul, {a2, k2});
  OpId a3 = g.add_op(OpType::Add, {m1, s[3]});
  OpId a4 = g.add_op(OpType::Add, {a3, a0});
  OpId a5 = g.add_op(OpType::Add, {a4, m0});
  g.add_output(a5, "out");
  g.add_output(a2, "state_next");
  return g;
}

Dfg dual_fir(int taps) {
  Dfg g("dualfir" + std::to_string(taps));
  for (int ch = 0; ch < 2; ++ch) {
    std::vector<OpId> x, coef;
    for (int i = 0; i < taps; ++i)
      x.push_back(g.add_input((ch ? "y" : "x") + std::to_string(i)));
    for (int i = 0; i < taps; ++i)
      coef.push_back(g.add_const(3 + 2 * i));
    std::vector<OpId> level;
    for (int i = 0; i < taps; ++i)
      level.push_back(g.add_op(OpType::Mul, {x[i], coef[i]}));
    while (level.size() > 1) {
      std::vector<OpId> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2)
        next.push_back(g.add_op(OpType::Add, {level[i], level[i + 1]}));
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
    }
    g.add_output(level[0], ch ? "yout" : "xout");
  }
  return g;
}

Dfg dct_butterfly() {
  Dfg g("dct4");
  std::vector<OpId> x;
  for (int i = 0; i < 4; ++i) x.push_back(g.add_input("x" + std::to_string(i)));
  OpId c1 = g.add_const(2);
  OpId c2 = g.add_const(3);
  OpId s0 = g.add_op(OpType::Add, {x[0], x[3]});
  OpId s1 = g.add_op(OpType::Add, {x[1], x[2]});
  OpId d0 = g.add_op(OpType::Sub, {x[0], x[3]});
  OpId d1 = g.add_op(OpType::Sub, {x[1], x[2]});
  OpId y0 = g.add_op(OpType::Add, {s0, s1});
  OpId y2 = g.add_op(OpType::Sub, {s0, s1});
  OpId y1 = g.add_op(OpType::Mul, {d0, c1});
  OpId t = g.add_op(OpType::Mul, {d1, c2});
  OpId y3 = g.add_op(OpType::Add, {y1, t});
  g.add_output(y0, "y0");
  g.add_output(y1, "y1");
  g.add_output(y2, "y2");
  g.add_output(y3, "y3");
  return g;
}

}  // namespace lps::arch
