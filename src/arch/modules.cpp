#include "arch/modules.hpp"

#include <algorithm>
#include <stdexcept>

namespace lps::arch {

std::vector<const Module*> ModuleLibrary::variants(OpType op) const {
  std::vector<const Module*> v;
  for (const auto& m : modules)
    if (m.op == op) v.push_back(&m);
  std::sort(v.begin(), v.end(), [](const Module* a, const Module* b) {
    return a->latency_cs < b->latency_cs;
  });
  return v;
}

const Module* ModuleLibrary::fastest(OpType op) const {
  auto v = variants(op);
  return v.empty() ? nullptr : v.front();
}

const Module* ModuleLibrary::most_efficient(OpType op) const {
  auto v = variants(op);
  const Module* best = nullptr;
  for (const Module* m : v)
    if (!best || m->energy_pj < best->energy_pj) best = m;
  return best;
}

ModuleLibrary standard_module_library() {
  ModuleLibrary lib;
  lib.modules = {
      {"add_cla", OpType::Add, 1, 6.0, 2.0},
      {"add_csel", OpType::Add, 1, 5.0, 1.6},
      {"add_ripple", OpType::Add, 2, 3.0, 1.0},
      {"sub_cla", OpType::Sub, 1, 6.5, 2.0},
      {"sub_ripple", OpType::Sub, 2, 3.3, 1.0},
      {"mul_array", OpType::Mul, 2, 40.0, 8.0},
      {"mul_booth", OpType::Mul, 3, 28.0, 6.0},
      {"mul_serial", OpType::Mul, 8, 18.0, 2.5},
      {"shift_barrel", OpType::Shift, 1, 2.0, 1.2},
      {"cmp_fast", OpType::Cmp, 1, 2.5, 0.8},
      {"cmp_ripple", OpType::Cmp, 2, 1.4, 0.5},
  };
  return lib;
}

namespace {

bool is_exec(OpType t) {
  return t != OpType::Input && t != OpType::Const && t != OpType::Output;
}

int critical_path(const Dfg& g, const std::vector<const Module*>& choice) {
  std::vector<int> finish(g.num_ops(), 0);
  for (OpId i : g.topo_order()) {
    const Op& o = g.op(i);
    int start = 0;
    for (OpId a : o.args) start = std::max(start, finish[a]);
    int lat = is_exec(o.type) && choice[i] ? choice[i]->latency_cs : 0;
    finish[i] = start + lat;
  }
  int cp = 0;
  for (int f : finish) cp = std::max(cp, f);
  return cp;
}

}  // namespace

ModuleSelection select_modules(const Dfg& g, const ModuleLibrary& lib,
                               int deadline_cs) {
  ModuleSelection sel;
  sel.choice.assign(g.num_ops(), nullptr);
  for (int i = 0; i < g.num_ops(); ++i) {
    const Op& o = g.op(i);
    if (!is_exec(o.type)) continue;
    sel.choice[i] = lib.fastest(o.type);
    if (!sel.choice[i])
      throw std::invalid_argument("select_modules: no module for op type");
  }
  if (critical_path(g, sel.choice) > deadline_cs)
    deadline_cs = critical_path(g, sel.choice);  // infeasible: relax to best

  // Greedy demotion: at each step take the single substitution with the
  // best energy saving that keeps the critical path within the deadline.
  bool progress = true;
  while (progress) {
    progress = false;
    double best_gain = 0.0;
    int best_op = -1;
    const Module* best_mod = nullptr;
    for (int i = 0; i < g.num_ops(); ++i) {
      if (!sel.choice[i]) continue;
      for (const Module* m : lib.variants(g.op(i).type)) {
        double gain = sel.choice[i]->energy_pj - m->energy_pj;
        if (gain <= best_gain) continue;
        const Module* old = sel.choice[i];
        sel.choice[i] = m;
        bool ok = critical_path(g, sel.choice) <= deadline_cs;
        sel.choice[i] = old;
        if (ok) {
          best_gain = gain;
          best_op = i;
          best_mod = m;
        }
      }
    }
    if (best_op >= 0) {
      sel.choice[best_op] = best_mod;
      progress = true;
    }
  }
  for (int i = 0; i < g.num_ops(); ++i)
    if (sel.choice[i]) sel.energy_pj += sel.choice[i]->energy_pj;
  sel.schedule_length_cs = critical_path(g, sel.choice);
  return sel;
}

}  // namespace lps::arch
