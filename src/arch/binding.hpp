// binding.hpp — low-switching allocation and binding (§IV-B).
//
// "The decisions made during these processes, including the extent of
// hardware sharing and the sequence of operations (variables) mapped to
// each functional unit (register), affect the total switched capacitance in
// the data path.  The problem of minimizing this switched capacitance,
// while accounting for correlations between signals, is addressed in
// [33],[34]" (Raghunathan & Jha).
//
// We simulate the DFG on a random input ensemble to obtain the actual
// operand traces, then bind operations to functional units so that
// consecutive operations sharing a unit present similar operand bit
// patterns: the unit-input switched bits are measured from the traces, and
// a greedy exchange search minimizes their sum.  A naive (first-fit by op
// index) binding provides the baseline.

#pragma once

#include <cstdint>
#include <vector>

#include "arch/dfg.hpp"
#include "arch/scheduling.hpp"

namespace lps::arch {

struct Binding {
  std::vector<int> unit_of;  // per op: functional-unit instance (-1 none)
  int num_units = 0;
  double switched_bits = 0.0;  // expected unit-input toggles per DFG pass
};

struct BindingOptions {
  int word_bits = 16;
  std::size_t trace_samples = 256;
  std::uint64_t seed = 2718;
  int exchange_iterations = 2000;
};

/// First-fit binding: ops of each type assigned round-robin to the minimum
/// number of units allowed by the schedule.
Binding naive_binding(const Dfg& g, const Schedule& s,
                      const BindingOptions& opt = {});

/// Correlation-aware binding: same unit count, operands traced, greedy
/// pairwise-exchange minimization of unit-input switching [33,34].
Binding low_power_binding(const Dfg& g, const Schedule& s,
                          const BindingOptions& opt = {});

/// Re-evaluate the switched-bits cost of an arbitrary binding (shared by
/// both constructors and available for tests).
double binding_cost(const Dfg& g, const Schedule& s, const Binding& b,
                    const BindingOptions& opt);

// ---- register binding ("variables to registers", [33,34]) ------------------

struct RegisterBinding {
  std::vector<int> reg_of;     // per op producing a value (-1 = none)
  int num_registers = 0;
  double switched_bits = 0.0;  // register-input toggles per DFG pass
};

/// Lifetime analysis + left-edge allocation: values (op results) that are
/// alive simultaneously get distinct registers; the low-power variant
/// chooses, among lifetime-compatible registers, the one whose previous
/// value is closest in Hamming distance on the traced operand values.
RegisterBinding naive_register_binding(const Dfg& g, const Schedule& s,
                                       const BindingOptions& opt = {});
RegisterBinding low_power_register_binding(const Dfg& g, const Schedule& s,
                                           const BindingOptions& opt = {});

}  // namespace lps::arch
