// transforms.hpp — behavioral transformations for voltage scaling (§IV-B).
//
// Chandrakasan et al. [7]: "The most important transformations for fixed
// throughput systems are those which reduce the number of control steps.
// Slower clocks can then be used for the same throughput, enabling the use
// of lower supply voltages."  We implement the two canonical examples on
// the Dfg representation:
//   - unroll(): process k samples per iteration (k parallel copies of the
//     body — capacitance ×k, time budget per sample ×k at the same
//     throughput, so the critical path slack grows and V_DD drops);
//   - tree_height_reduction(): rebalance chained associative additions into
//     a tree (critical path shrinks at equal op count).
// evaluate_voltage_gain() combines a transformed DFG with the VoltageModel
// to produce the paper's power ratio.

#pragma once

#include "arch/dfg.hpp"
#include "arch/modules.hpp"
#include "arch/voltage.hpp"

namespace lps::arch {

/// k parallel copies of the DFG body (independent samples per iteration).
Dfg unroll(const Dfg& g, int k);

/// Rebalance chains of 2-input Adds into balanced trees.  Same op count,
/// shorter critical path.
Dfg tree_height_reduction(const Dfg& g);

struct VoltageGain {
  int cs_reference = 0;     // control steps of the reference body
  int cs_transformed = 0;   // control steps of the transformed body
  int samples_per_pass = 1;
  double slack = 1.0;       // time budget / critical path, per sample
  double vdd = 5.0;
  double capacitance_factor = 1.0;  // switched cap per sample vs reference
  double power_ratio = 1.0;         // transformed power / reference power
};

/// Fixed-throughput analysis: the reference DFG at vnom sets the per-sample
/// time budget; the transformed DFG (processing `samples_per_pass` samples)
/// may run its longer pass over a proportionally longer window, and the
/// leftover slack is converted to a lower V_DD.  Capacitance per sample is
/// approximated by energy-weighted op counts from the module library.
VoltageGain evaluate_voltage_gain(const Dfg& reference, const Dfg& transformed,
                                  int samples_per_pass,
                                  const ModuleLibrary& lib,
                                  const VoltageModel& vm = {});

}  // namespace lps::arch
