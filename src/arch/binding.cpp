#include "arch/binding.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <random>

namespace lps::arch {

namespace {

bool is_exec(OpType t) {
  return t != OpType::Input && t != OpType::Const && t != OpType::Output;
}

// Operand traces: value of every op for each random sample.  Successive
// DFG inputs model successive samples of a band-limited signal (the
// delayed-tap structure of DSP datapaths): neighbouring inputs are strongly
// correlated, which is precisely the signal correlation that the binding
// of [33,34] exploits when deciding which operations share a unit.
std::vector<std::vector<std::int64_t>> traces(const Dfg& g,
                                              const BindingOptions& opt) {
  std::mt19937_64 rng(opt.seed);
  std::vector<std::vector<std::int64_t>> tr;
  tr.reserve(opt.trace_samples);
  std::vector<std::int64_t> in(g.inputs().size());
  const std::int64_t range = 1LL << opt.word_bits;
  for (std::size_t s = 0; s < opt.trace_samples; ++s) {
    std::int64_t cur =
        static_cast<std::int64_t>(rng() & ((1ULL << opt.word_bits) - 1));
    char group = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      // Inputs whose names share a leading letter belong to one signal
      // (delayed taps of the same stream); a new letter starts an
      // independent stream with a fresh random base.
      const std::string& nm = g.op(g.inputs()[i]).name;
      char gch = nm.empty() ? 0 : nm[0];
      if (i == 0 || gch != group) {
        group = gch;
        cur = static_cast<std::int64_t>(rng() &
                                        ((1ULL << opt.word_bits) - 1));
      }
      in[i] = cur;
      std::int64_t delta =
          static_cast<std::int64_t>(rng() % (range / 16)) - range / 32;
      cur = std::clamp<std::int64_t>(cur + delta, 0, range - 1);
    }
    tr.push_back(g.eval(in));
  }
  return tr;
}

double pair_cost(const Dfg& g,
                 const std::vector<std::vector<std::int64_t>>& tr, OpId a,
                 OpId b, int word_bits) {
  // Expected input-bus toggles when unit switches from op a to op b.
  std::uint64_t mask = (1ULL << word_bits) - 1;
  const auto& aa = g.op(a).args;
  const auto& bb = g.op(b).args;
  std::size_t k = std::min(aa.size(), bb.size());
  double total = 0.0;
  for (const auto& row : tr) {
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t va = static_cast<std::uint64_t>(row[aa[i]]) & mask;
      std::uint64_t vb = static_cast<std::uint64_t>(row[bb[i]]) & mask;
      total += std::popcount(va ^ vb);
    }
  }
  return total / static_cast<double>(tr.size());
}

struct UnitPlan {
  std::vector<std::vector<OpId>> unit_ops;  // per unit, ops sorted by start
};

// Cost of a plan: sum over units of consecutive-op input toggles.
double plan_cost(const Dfg& g, const Schedule& s,
                 const std::vector<std::vector<std::int64_t>>& tr,
                 const UnitPlan& plan, int word_bits) {
  double c = 0.0;
  for (const auto& ops : plan.unit_ops) {
    for (std::size_t i = 1; i < ops.size(); ++i)
      c += pair_cost(g, tr, ops[i - 1], ops[i], word_bits);
  }
  (void)s;
  return c;
}

Binding plan_to_binding(const Dfg& g, const UnitPlan& plan, double cost) {
  Binding b;
  b.unit_of.assign(g.num_ops(), -1);
  for (std::size_t u = 0; u < plan.unit_ops.size(); ++u)
    for (OpId op : plan.unit_ops[u]) b.unit_of[op] = static_cast<int>(u);
  b.num_units = static_cast<int>(plan.unit_ops.size());
  b.switched_bits = cost;
  return b;
}

// Round-robin plan grouped by op type; ops in start-time order.  This is
// the power-oblivious baseline: an area-driven binder balances utilization
// across units, which interleaves unrelated value streams onto shared
// hardware — exactly the behaviour [33,34] identify as wasteful.
UnitPlan round_robin(const Dfg& g, const Schedule& s) {
  UnitPlan plan;
  std::map<OpType, std::vector<int>> units_of_type;  // -> plan indices
  std::map<OpType, std::size_t> next_of_type;        // rotation pointer
  std::vector<int> unit_busy_until;                  // per plan unit
  std::vector<OpId> order;
  for (int i = 0; i < g.num_ops(); ++i)
    if (is_exec(g.op(i).type)) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return s.start_cs[a] < s.start_cs[b];
  });
  for (OpId i : order) {
    OpType t = g.op(i).type;
    auto& mine = units_of_type[t];
    auto& ptr = next_of_type[t];
    int chosen = -1;
    for (std::size_t step = 0; step < mine.size(); ++step) {
      int u = mine[(ptr + step) % mine.size()];
      if (unit_busy_until[u] <= s.start_cs[i]) {
        chosen = u;
        ptr = (ptr + step + 1) % mine.size();
        break;
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(plan.unit_ops.size());
      plan.unit_ops.emplace_back();
      unit_busy_until.push_back(0);
      mine.push_back(chosen);
      ptr = 0;
    }
    plan.unit_ops[chosen].push_back(i);
    unit_busy_until[chosen] = s.finish_cs[i];
  }
  return plan;
}

bool overlaps(const Schedule& s, OpId a, OpId b) {
  return s.start_cs[a] < s.finish_cs[b] && s.start_cs[b] < s.finish_cs[a];
}

bool fits(const Dfg& g, const Schedule& s, const std::vector<OpId>& unit_ops,
          OpId candidate, OpId ignore) {
  for (OpId o : unit_ops) {
    if (o == ignore) continue;
    if (g.op(o).type != g.op(candidate).type) return false;
    if (overlaps(s, o, candidate)) return false;
  }
  return true;
}

}  // namespace

double binding_cost(const Dfg& g, const Schedule& s, const Binding& b,
                    const BindingOptions& opt) {
  auto tr = traces(g, opt);
  UnitPlan plan;
  plan.unit_ops.assign(b.num_units, {});
  std::vector<OpId> order;
  for (int i = 0; i < g.num_ops(); ++i)
    if (b.unit_of[i] >= 0) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](OpId x, OpId y) {
    return s.start_cs[x] < s.start_cs[y];
  });
  for (OpId i : order) plan.unit_ops[b.unit_of[i]].push_back(i);
  return plan_cost(g, s, tr, plan, opt.word_bits);
}

Binding naive_binding(const Dfg& g, const Schedule& s,
                      const BindingOptions& opt) {
  auto tr = traces(g, opt);
  UnitPlan plan = round_robin(g, s);
  return plan_to_binding(g, plan, plan_cost(g, s, tr, plan, opt.word_bits));
}

Binding low_power_binding(const Dfg& g, const Schedule& s,
                          const BindingOptions& opt) {
  auto tr = traces(g, opt);
  UnitPlan plan = round_robin(g, s);
  double cost = plan_cost(g, s, tr, plan, opt.word_bits);
  std::mt19937_64 rng(opt.seed ^ 0xB1D);

  auto all_ops = [&]() {
    std::vector<std::pair<int, std::size_t>> v;  // (unit, index)
    for (std::size_t u = 0; u < plan.unit_ops.size(); ++u)
      for (std::size_t k = 0; k < plan.unit_ops[u].size(); ++k)
        v.push_back({static_cast<int>(u), k});
    return v;
  };

  for (int it = 0; it < opt.exchange_iterations; ++it) {
    auto ops = all_ops();
    if (ops.size() < 2) break;
    auto [u1, k1] = ops[rng() % ops.size()];
    auto [u2, k2] = ops[rng() % ops.size()];
    if (u1 == u2) continue;
    OpId a = plan.unit_ops[u1][k1];
    OpId b = plan.unit_ops[u2][k2];
    if (g.op(a).type != g.op(b).type) continue;
    // Try swap.
    if (!fits(g, s, plan.unit_ops[u2], a, b) ||
        !fits(g, s, plan.unit_ops[u1], b, a))
      continue;
    UnitPlan trial = plan;
    trial.unit_ops[u1][k1] = b;
    trial.unit_ops[u2][k2] = a;
    // Keep per-unit start order.
    for (auto* v : {&trial.unit_ops[u1], &trial.unit_ops[u2]})
      std::stable_sort(v->begin(), v->end(), [&](OpId x, OpId y) {
        return s.start_cs[x] < s.start_cs[y];
      });
    double c = plan_cost(g, s, tr, trial, opt.word_bits);
    if (c < cost - 1e-12) {
      plan = std::move(trial);
      cost = c;
    }
  }
  return plan_to_binding(g, plan, cost);
}

namespace {

struct Lifetime {
  OpId op;        // value producer
  int birth, death;
};

// Values needing registers: results of exec ops and inputs that are used
// after the cycle they arrive (we restrict to exec results for clarity).
std::vector<Lifetime> lifetimes(const Dfg& g, const Schedule& s) {
  std::vector<Lifetime> lt;
  for (int i = 0; i < g.num_ops(); ++i) {
    if (!is_exec(g.op(i).type)) continue;
    int death = s.finish_cs[i];
    for (int j = 0; j < g.num_ops(); ++j)
      for (OpId a : g.op(j).args)
        if (a == i) death = std::max(death, s.start_cs[j]);
    lt.push_back({i, s.finish_cs[i], death});
  }
  std::sort(lt.begin(), lt.end(), [](const Lifetime& a, const Lifetime& b) {
    if (a.birth != b.birth) return a.birth < b.birth;
    return a.op < b.op;
  });
  return lt;
}

// Register-input toggles: for each register, writes in time order; cost is
// the Hamming distance between consecutive stored values, averaged over
// traces.
double register_cost(const Dfg& g, const RegisterBinding& rb,
                     const Schedule& s,
                     const std::vector<std::vector<std::int64_t>>& tr,
                     int word_bits) {
  std::uint64_t mask = (1ULL << word_bits) - 1;
  // Group writers per register, ordered by write time.
  std::vector<std::vector<OpId>> writers(rb.num_registers);
  for (int i = 0; i < g.num_ops(); ++i)
    if (rb.reg_of[i] >= 0) writers[rb.reg_of[i]].push_back(i);
  for (auto& w : writers)
    std::sort(w.begin(), w.end(), [&](OpId a, OpId b) {
      return s.finish_cs[a] < s.finish_cs[b];
    });
  double total = 0;
  for (const auto& w : writers)
    for (std::size_t k = 1; k < w.size(); ++k)
      for (const auto& row : tr)
        total += std::popcount(
            (static_cast<std::uint64_t>(row[w[k - 1]]) ^
             static_cast<std::uint64_t>(row[w[k]])) &
            mask);
  return total / static_cast<double>(tr.size());
}

RegisterBinding bind_registers(const Dfg& g, const Schedule& s,
                               const BindingOptions& opt, bool power_aware) {
  auto lt = lifetimes(g, s);
  auto tr = traces(g, opt);
  RegisterBinding rb;
  rb.reg_of.assign(g.num_ops(), -1);
  std::vector<int> busy_until;      // per register
  std::vector<OpId> last_value;     // last op written per register
  std::uint64_t mask = (1ULL << opt.word_bits) - 1;
  for (const auto& v : lt) {
    int chosen = -1;
    if (power_aware) {
      // Among free registers, pick the one whose previous value is closest
      // in expected Hamming distance to the new value.
      double best = 1e30;
      for (std::size_t r = 0; r < busy_until.size(); ++r) {
        if (busy_until[r] > v.birth) continue;
        double d = 0;
        for (const auto& row : tr)
          d += std::popcount((static_cast<std::uint64_t>(row[last_value[r]]) ^
                              static_cast<std::uint64_t>(row[v.op])) &
                             mask);
        if (d < best) {
          best = d;
          chosen = static_cast<int>(r);
        }
      }
    } else {
      // Left-edge: first free register.
      for (std::size_t r = 0; r < busy_until.size(); ++r)
        if (busy_until[r] <= v.birth) {
          chosen = static_cast<int>(r);
          break;
        }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(busy_until.size());
      busy_until.push_back(0);
      last_value.push_back(v.op);
    }
    rb.reg_of[v.op] = chosen;
    busy_until[chosen] = v.death;
    last_value[chosen] = v.op;
  }
  rb.num_registers = static_cast<int>(busy_until.size());
  rb.switched_bits = register_cost(g, rb, s, tr, opt.word_bits);
  return rb;
}

}  // namespace

RegisterBinding naive_register_binding(const Dfg& g, const Schedule& s,
                                       const BindingOptions& opt) {
  return bind_registers(g, s, opt, false);
}

RegisterBinding low_power_register_binding(const Dfg& g, const Schedule& s,
                                           const BindingOptions& opt) {
  return bind_registers(g, s, opt, true);
}

}  // namespace lps::arch
