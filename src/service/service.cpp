#include "service/service.hpp"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "core/metrics.hpp"

namespace lps::service {

namespace metrics = lps::core::metrics;
namespace fs = std::filesystem;

Service::Service(ServiceOptions opt)
    : opt_(std::move(opt)), dog_(opt_.watchdog_period) {
  if (!opt_.journal_dir.empty()) {
    std::error_code ec;
    fs::create_directories(opt_.journal_dir, ec);  // best effort
  }
}

std::shared_ptr<Session> Service::find_session(const std::string& name) {
  std::lock_guard lk(registry_mu_);
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<Session> Service::get_or_create(const std::string& name) {
  std::lock_guard lk(registry_mu_);
  auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second;
  std::string journal;
  if (!opt_.journal_dir.empty())
    journal = opt_.journal_dir + "/" + name + ".journal";
  auto s = std::make_shared<Session>(name, std::move(journal));
  sessions_.emplace(name, s);
  return s;
}

void Service::enforce_memory_cap(const Session* keep) {
  if (opt_.memory_cap_bytes == 0) return;
  // Snapshot under the registry lock, evict outside it (eviction takes each
  // session's exclusive lock; holding the registry lock across that would
  // serialize the whole daemon behind one slow session).
  std::vector<std::shared_ptr<Session>> snap;
  {
    std::lock_guard lk(registry_mu_);
    snap.reserve(sessions_.size());
    for (auto& [_, s] : sessions_) snap.push_back(s);
  }
  auto total = [&] {
    std::size_t t = 0;
    for (auto& s : snap) t += s->cache_bytes();
    return t;
  };
  if (total() <= opt_.memory_cap_bytes) return;
  std::sort(snap.begin(), snap.end(), [](const auto& a, const auto& b) {
    return a->last_used() < b->last_used();
  });
  for (auto& s : snap) {
    if (total() <= opt_.memory_cap_bytes) break;
    if (s.get() == keep || s->cache_bytes() == 0) continue;
    std::unique_lock lk(s->mutex());
    s->evict_caches();
  }
}

std::string Service::dispatch(const std::string& frame) {
  served_.fetch_add(1, std::memory_order_relaxed);
  ParsedRequest parsed = parse_request(frame);
  if (!parsed.request) return parsed.error_response;
  Request& req = *parsed.request;

  core::CancelToken cancel;
  DeadlineGuard guard(dog_, cancel, req.deadline_ms);
  try {
    return handle(req, req.deadline_ms ? &cancel : nullptr);
  } catch (const core::CancelledError&) {
    return make_error(req.id, ErrorCode::Deadline,
                      "deadline of " + std::to_string(req.deadline_ms) +
                          " ms exceeded");
  } catch (const std::exception& e) {
    // handle() poisons the session before rethrowing; this is the backstop
    // that keeps the promise "every frame gets a structured answer".
    metrics::count("service.internal_errors");
    return make_error(req.id, ErrorCode::Internal, e.what());
  } catch (...) {
    metrics::count("service.internal_errors");
    return make_error(req.id, ErrorCode::Internal, "unknown exception");
  }
}

std::string Service::handle(const Request& req,
                            const core::CancelToken* cancel) {
  switch (req.verb) {
    case Verb::Ping: {
      JsonObject o;
      o.emplace_back("pong", Json(true));
      return make_ok(req.id, std::move(o));
    }
    case Verb::Shutdown: {
      shutdown_.store(true, std::memory_order_relaxed);
      JsonObject o;
      o.emplace_back("stopping", Json(true));
      return make_ok(req.id, std::move(o));
    }
    case Verb::Stat: {
      if (req.session.empty()) return make_ok(req.id, stat());
      auto s = find_session(req.session);
      if (!s)
        return make_error(req.id, ErrorCode::NoSession,
                          "no session '" + req.session + "'");
      std::shared_lock lk(s->mutex());
      return make_ok(req.id, s->stat());
    }
    default:
      break;
  }

  // Session verbs.  Load creates; the rest require an existing session.
  std::shared_ptr<Session> s = req.verb == Verb::Load
                                   ? get_or_create(req.session)
                                   : find_session(req.session);
  if (!s)
    return make_error(req.id, ErrorCode::NoSession,
                      "no session '" + req.session + "' (load one first)");
  s->touch(tick_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (s->poisoned() && req.verb != Verb::Load)
    return make_error(req.id, ErrorCode::SessionPoisoned,
                      "session '" + req.session +
                          "' is poisoned; issue a fresh 'load'");

  OpResult r;
  if (req.verb == Verb::Estimate) {
    std::shared_lock lk(s->mutex());
    if (!s->loaded())
      return make_error(req.id, ErrorCode::NoSession,
                        "session '" + req.session + "' has no netlist");
    // Estimates are read-only: CancelledError propagates to dispatch()'s
    // Deadline handler, other exceptions to the Internal backstop — neither
    // leaves shared state to poison.
    r = s->estimate(req.params, cancel);
  } else {
    std::unique_lock lk(s->mutex());
    try {
      switch (req.verb) {
        case Verb::Load: {
          const Json* b = req.params.find("blif");
          if (!b || !b->is_string())
            return make_error(req.id, ErrorCode::BadRequest,
                              "'load' needs a string field 'blif'");
          std::size_t vectors = 0;
          std::uint64_t seed = 0xC0FFEE;
          bool analyzer = true;
          if (const Json* v = req.params.find("vectors")) {
            double d = v->is_number() ? v->as_number(0) : 0;
            if (!(d >= 64) || d > 1e7 || d != static_cast<std::uint64_t>(d))
              return make_error(req.id, ErrorCode::BadRequest,
                                "'vectors' must be an integer in [64, 1e7]");
            vectors = static_cast<std::size_t>(d);
          }
          if (const Json* sd = req.params.find("seed")) {
            double d = sd->is_number() ? sd->as_number(-1) : -1;
            if (!(d >= 0) || d != static_cast<std::uint64_t>(d))
              return make_error(req.id, ErrorCode::BadRequest,
                                "'seed' must be a non-negative integer");
            seed = static_cast<std::uint64_t>(d);
          }
          if (const Json* a = req.params.find("analyzer"))
            analyzer = a->is_bool() ? a->as_bool() : true;
          r = s->load(b->as_string(), vectors, seed, analyzer, cancel);
          break;
        }
        case Verb::Mutate: {
          const Json* ops = req.params.find("ops");
          if (!ops)
            return make_error(req.id, ErrorCode::BadRequest,
                              "'mutate' needs an 'ops' array");
          r = s->mutate(*ops, cancel);
          break;
        }
        case Verb::Optimize:
          r = s->optimize(req.params, cancel);
          break;
        case Verb::Rollback:
          r = s->rollback(cancel);
          break;
        default:
          return make_error(req.id, ErrorCode::Internal, "unhandled verb");
      }
    } catch (const core::CancelledError&) {
      throw;  // deadline, not a defect — session ops already rolled back
    } catch (const std::exception& e) {
      s->poison(e.what());
      throw;
    } catch (...) {
      s->poison("unknown exception");
      throw;
    }
  }

  if (!r.status.is_ok())
    return make_error(req.id, r.code, r.status.diagnostic().str());
  enforce_memory_cap(s.get());
  return make_ok(req.id, std::move(r.payload));
}

std::size_t Service::recover_sessions() {
  if (opt_.journal_dir.empty()) return 0;
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opt_.journal_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    fs::path p = entry.path();
    if (p.extension() != ".journal") continue;
    std::string name = p.stem().string();
    if (!valid_session_name(name)) continue;
    auto s = get_or_create(name);
    std::unique_lock lk(s->mutex());
    OpResult r;
    try {
      r = s->recover(nullptr);
    } catch (...) {
      r = OpResult::error(ErrorCode::Internal, "recovery threw");
    }
    if (r.status.is_ok()) {
      ++n;
    } else {
      metrics::count("service.journal_unrecoverable");
      std::lock_guard rlk(registry_mu_);
      sessions_.erase(name);
    }
  }
  return n;
}

JsonObject Service::stat() {
  std::vector<std::shared_ptr<Session>> snap;
  {
    std::lock_guard lk(registry_mu_);
    for (auto& [_, s] : sessions_) snap.push_back(s);
  }
  std::size_t cache = 0, poisoned = 0;
  for (auto& s : snap) {
    cache += s->cache_bytes();
    if (s->poisoned()) ++poisoned;
  }
  JsonObject o;
  o.emplace_back("sessions", Json(snap.size()));
  o.emplace_back("poisoned_sessions", Json(poisoned));
  o.emplace_back("cache_bytes", Json(cache));
  o.emplace_back("memory_cap_bytes", Json(opt_.memory_cap_bytes));
  o.emplace_back("requests_served",
                 Json(served_.load(std::memory_order_relaxed)));
  o.emplace_back("deadlines_fired", Json(dog_.fired()));
  o.emplace_back("watchdog_armed", Json(dog_.armed()));
  return o;
}

}  // namespace lps::service
