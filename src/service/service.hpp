// service.hpp — the lpsd request dispatcher: sessions, deadlines, budgets.
//
// Service is the transport-independent daemon core: it owns the session
// registry, the deadline watchdog and the global cache-memory budget, and
// turns one request line into one response line (`dispatch`).  The socket
// layer (sockets.hpp) and the in-process tests/bench drive the same entry
// point, so every robustness property is testable without a socket.
//
// Concurrency model
//   dispatch() is safe to call from any number of threads (one per
//   connection in lpsd).  The registry is guarded by a mutex held only for
//   lookup/insert; per-session work runs under the session's own
//   shared_mutex — estimates shared, everything else exclusive — so slow
//   requests on one session never block another session, and concurrent
//   read-only estimates on the same session proceed in parallel.
//
// Resource budget
//   Each session's analyzer caches are metered (Session::cache_bytes); when
//   the sum exceeds `memory_cap_bytes`, the least-recently-used sessions'
//   caches are evicted until back under the cap.  Eviction degrades, never
//   breaks: the session keeps its netlist and journal, estimates fall back
//   to full analyses (counted in stat/E23), and the next exclusive op
//   rebuilds the baseline.
//
// Isolation
//   An unexpected exception inside a session op poisons that session only:
//   the request gets a structured `internal` error, later requests get
//   `session_poisoned` until a fresh `load`, and the daemon keeps serving
//   every other session.  CancelledError is not poisoning — it is the
//   deadline mechanism working as designed.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "service/session.hpp"
#include "service/watchdog.hpp"

namespace lps::service {

struct ServiceOptions {
  /// Directory for session journal files ("<dir>/<session>.journal").
  /// Empty disables journaling (pure in-memory sessions).
  std::string journal_dir;
  /// Global cap on summed analyzer-cache bytes across sessions; 0 = no cap.
  std::size_t memory_cap_bytes = 0;
  /// Watchdog scan period (deadline staleness bound).
  std::chrono::milliseconds watchdog_period{5};
};

class Service {
 public:
  explicit Service(ServiceOptions opt = {});

  /// Handle one request frame (one line, without the trailing newline) and
  /// return the response line (without newline).  Never throws; every
  /// outcome — including internal failures — is a structured JSON response.
  std::string dispatch(const std::string& frame);

  /// True once a shutdown request was accepted (the socket loop exits).
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Recover every *.journal file in journal_dir into a live session.
  /// Returns the number of sessions recovered; unrecoverable journals are
  /// skipped (counted in service.journal_unrecoverable).
  std::size_t recover_sessions();

  /// Daemon-wide statistics (the session-less "stat" verb).
  JsonObject stat();

  Watchdog& watchdog() { return dog_; }

 private:
  std::shared_ptr<Session> find_session(const std::string& name);
  std::shared_ptr<Session> get_or_create(const std::string& name);
  /// Evict LRU session caches until the summed cache bytes fit the cap.
  /// Never evicts `keep` (the session servicing the current request).
  void enforce_memory_cap(const Session* keep);

  std::string handle(const Request& req, const core::CancelToken* cancel);

  ServiceOptions opt_;
  Watchdog dog_;
  std::mutex registry_mu_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> tick_{0};   // LRU clock
  std::atomic<std::uint64_t> served_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace lps::service
