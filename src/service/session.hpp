// session.hpp — one persistent netlist session inside the lpsd daemon.
//
// A session is the daemon-side unit of state and of isolation: a named
// netlist, its (optional) incremental power analyzer, and an append-only
// on-disk journal that makes the session recoverable across a daemon crash.
// The service layer (service.hpp) owns the concurrency policy; a Session
// exposes the per-verb operations plus the shared_mutex they must be called
// under:
//
//   shared (read) lock   estimate() — many concurrently per session
//   exclusive lock       load / mutate / optimize / rollback / recovery /
//                        cache eviction
//
// The analyzer is only created, advanced or dropped inside exclusive
// contexts, so a shared-locked estimate either reads the finished cached
// analysis or runs a pure power::analyze over the (immutable while shared-
// locked) netlist — there is no state it could race on.
//
// Durability model (crash recovery)
//   The journal file holds one JSON line per *committed* state transition:
//     {"type":"base","blif":...,"hash":...}          (load)
//     {"type":"mutate","ops":[...],"hash":...}       (committed mutate)
//     {"type":"optimize","flow":...,"hash":...}      (kept optimize)
//   A record is appended only after the in-memory commit succeeded, and
//   each carries the structural_hash of the post-state.  Recovery replays
//   the file from the base; a torn final line (daemon killed mid-append) or
//   a hash mismatch truncates the journal there — so a kill at ANY point
//   leaves the recovered session equal to the last fully committed state:
//   a mid-mutate kill recovers to "fully rolled back", a post-append kill
//   to "fully applied", and nothing in between exists on disk.
//   Optimize records are only journaled when the flow ran to completion
//   without a cancellation, keeping replay deterministic.
//
// Failure model
//   Expected failures (bad BLIF, rejected edit scripts, deadline
//   cancellations) roll the netlist and analyzer back and report
//   diag::Status errors.  An *unexpected* exception inside an exclusive
//   operation marks the session poisoned: every later request gets a
//   session_poisoned error until a fresh load replaces it, and no other
//   session (nor the daemon) is affected.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "netlist/netlist.hpp"
#include "power/incremental.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace lps::service {

/// Outcome of a session operation: a Status plus the error code the
/// protocol layer should put on the wire when it failed.
struct OpResult {
  diag::Status status = diag::Status::ok();
  ErrorCode code = ErrorCode::Internal;  // meaningful when !status.is_ok()
  JsonObject payload;                    // verb response fields on success

  static OpResult ok(JsonObject payload = {}) {
    OpResult r;
    r.payload = std::move(payload);
    return r;
  }
  static OpResult error(ErrorCode code, std::string msg,
                        diag::SourceLoc loc = {}) {
    OpResult r;
    r.status = diag::Status::error(std::move(msg), std::move(loc));
    r.code = code;
    return r;
  }
};

class Session {
 public:
  /// `journal_path` empty = journaling disabled (in-memory session).
  Session(std::string name, std::string journal_path);

  const std::string& name() const { return name_; }
  std::shared_mutex& mutex() { return mu_; }

  // ---- operations (locking discipline in the header comment) --------------

  /// Exclusive.  Replace the session state from BLIF text; truncates and
  /// rewrites the journal base record.  `vectors`/`seed` fix the session's
  /// analyzer options.  `build_analyzer` false skips the baseline analysis
  /// (it is then built on the first mutate).
  OpResult load(const std::string& blif_text, std::size_t vectors,
                std::uint64_t seed, bool build_analyzer,
                const core::CancelToken* cancel);

  /// Exclusive.  Apply an edit script under the undo journal; commit and
  /// append to the journal only if every op applied and the invariants
  /// hold, else roll back (netlist and analyzer) and report.
  OpResult mutate(const Json& ops, const core::CancelToken* cancel);

  /// Shared.  Power estimate; serves the cached analysis when the request
  /// matches the session analyzer options, else runs a fresh full analysis
  /// (recorded in the degradation counters).
  OpResult estimate(const Json& params, const core::CancelToken* cancel);

  /// Exclusive.  Run an optimization flow ("combinational"/"sequential") on
  /// a working copy; on uncancelled completion adopt the result and journal
  /// it.
  OpResult optimize(const Json& params, const core::CancelToken* cancel);

  /// Exclusive.  Revert the most recent committed mutate/optimize by
  /// replaying the journal prefix; verifies the replayed structural hash.
  OpResult rollback(const core::CancelToken* cancel);

  /// Shared.  Session statistics (never fails).
  JsonObject stat() const;

  // ---- recovery / resource management (service layer) ---------------------

  /// Exclusive.  Rebuild state from the journal file.  Torn or
  /// hash-mismatching tails are truncated (and the file rewritten); returns
  /// an error only when no valid base record exists.
  OpResult recover(const core::CancelToken* cancel);

  /// Exclusive.  Drop the analyzer caches (LRU eviction under the global
  /// memory cap).  The netlist and journal stay; estimates degrade to full
  /// analyze() until the next exclusive op rebuilds the baseline.
  void evict_caches();

  /// Approximate bytes held by the analyzer caches (trace + tape).
  std::size_t cache_bytes() const {
    return cache_bytes_.load(std::memory_order_relaxed);
  }

  /// LRU bookkeeping (service layer sets/reads; monotonically increasing).
  void touch(std::uint64_t tick) {
    last_used_.store(tick, std::memory_order_relaxed);
  }
  std::uint64_t last_used() const {
    return last_used_.load(std::memory_order_relaxed);
  }

  bool poisoned() const { return poisoned_.load(std::memory_order_relaxed); }
  /// Mark the session wedged (unexpected exception escaped an exclusive
  /// op).  Requests answer session_poisoned from here on; load() clears it.
  void poison(const std::string& why);

  std::uint64_t hash() const { return hash_; }
  bool loaded() const { return loaded_; }

  /// Committed journal records beyond the base (test/stat hook).
  std::size_t journal_records() const { return records_.size(); }

 private:
  struct AnalyzerConfig {
    std::size_t vectors = 2048;
    std::uint64_t seed = 0xC0FFEE;
  };

  // Apply one journal record ("mutate"/"optimize") to net; returns error
  // text or empty.  Shared by mutate/optimize (first application) and
  // recover/rollback (replay) so both paths are the same code.
  std::string apply_ops(Netlist& net, const Json& ops,
                        std::vector<NodeId>* created);
  std::string apply_record(Netlist& net, const Json& record,
                           const core::CancelToken* cancel);

  // Rebuild net from base_blif_ + records_[0..n_records); verifies each
  // record's hash.  Returns error text or empty.
  std::string replay(Netlist& net, std::size_t n_records,
                     const core::CancelToken* cancel);

  // Analyzer lifecycle (exclusive contexts only).
  void rebuild_analyzer(const core::CancelToken* cancel);  // may leave null
  void update_cache_bytes();

  // Journal I/O.
  bool journal_rewrite();          // base + records_ -> file (atomic-ish)
  bool journal_append(const Json& record);

  std::string name_;
  std::string journal_path_;  // empty = no journaling
  mutable std::shared_mutex mu_;

  bool loaded_ = false;
  Netlist net_;
  std::uint64_t hash_ = 0;
  AnalyzerConfig cfg_;
  std::optional<power::IncrementalAnalyzer> analyzer_;

  std::string base_blif_;
  std::vector<Json> records_;  // committed mutate/optimize records

  std::atomic<std::size_t> cache_bytes_{0};
  std::atomic<std::uint64_t> last_used_{0};
  std::atomic<bool> poisoned_{false};
  std::string poison_reason_;

  // Degradation counters (stat()/E23): estimates served from cache, full
  // runs, and full runs forced by an eviction.
  std::atomic<std::uint64_t> est_cached_{0};
  std::atomic<std::uint64_t> est_full_{0};
  std::atomic<std::uint64_t> est_degraded_{0};
  bool evicted_ = false;  // analyzer dropped by eviction (exclusive ctx)
};

/// Format a structural hash the way the protocol does ("0x%016x").
std::string format_hash(std::uint64_t h);

}  // namespace lps::service
