// protocol.hpp — the lpsd wire protocol: framing, requests, responses.
//
// One request = one line of JSON terminated by '\n'; one response = one
// line of JSON.  A connection is a sequence of such exchanges.  The grammar
// (also documented in DESIGN.md "Service architecture"):
//
//   request  := { "verb": <verb>, "id"?: value, "session"?: name, ... }
//   verb     := "load" | "mutate" | "estimate" | "optimize" | "rollback"
//             | "stat" | "ping" | "shutdown"
//   name     := string matching [A-Za-z0-9_.-]{1,64}
//   response := { "ok": true, "id": <echo>, ...verb payload... }
//             | { "ok": false, "id": <echo>,
//                 "error": { "code": string, "message": string } }
//
// Error codes are a closed set (ErrorCode below) so clients can branch on
// them; "message" is human-oriented and carries the positioned diagnostic
// when one exists.  Every malformed frame — unparsable JSON, wrong types,
// unknown verbs, oversized frames — gets a structured error response; the
// daemon never answers a frame with silence or a closed connection, and
// never crashes on one (the protocol fuzz tests pin this).
//
// The session-name restriction is a security boundary: names become
// journal file names (session.hpp), so path separators and dot-dot are
// rejected at parse time, not sanitized later.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/json.hpp"

namespace lps::service {

/// Upper bound on one request frame, including the newline.  Covers a
/// multi-megabyte BLIF in a "load" with headroom; anything larger is
/// answered with a frame_too_large error and the connection is resynced at
/// the next newline.
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class Verb : std::uint8_t {
  Load,      // create/replace a session from BLIF text
  Mutate,    // apply an edit script under the undo journal
  Estimate,  // power analysis (read-only; concurrent per session)
  Optimize,  // run an optimization flow, keep the result
  Rollback,  // undo the most recent committed mutate/optimize
  Stat,      // session or daemon statistics
  Ping,      // liveness probe
  Shutdown,  // stop the daemon (lpsd only; in-process hosts ignore it)
};

std::string_view to_string(Verb v);

/// Closed error-code set.  Stringified verbatim into the "code" field.
enum class ErrorCode : std::uint8_t {
  BadFrame,       // not a JSON object / unparsable / oversized
  BadRequest,     // schema violation: missing or ill-typed fields
  UnknownVerb,    //
  BadSession,     // illegal session name
  NoSession,      // verb needs a session that doesn't exist
  SessionPoisoned,// session wedged by an earlier internal failure
  ParseError,     // BLIF text in "load" failed to parse
  MutateError,    // edit script rejected (netlist rolled back)
  Deadline,       // request exceeded deadline_ms and was cancelled
  Internal,       // unexpected exception (session poisoned, daemon alive)
  NothingToDo,    // rollback with an empty journal
};

std::string_view to_string(ErrorCode c);

/// A validated request envelope.  Verb-specific params stay as Json; the
/// handlers pull what they need with typed helpers.
struct Request {
  Verb verb = Verb::Ping;
  std::string session;        // empty when the verb doesn't need one
  Json id;                    // echoed verbatim in the response (may be null)
  Json params;                // the whole request object
  /// Per-request deadline in milliseconds (0 = none).  Estimates and
  /// optimizes poll a cancellation token armed with this.
  std::uint64_t deadline_ms = 0;
};

/// True iff `name` is a legal session key: [A-Za-z0-9_.-]{1,64} and not
/// "." or ".." (names become journal file names).
bool valid_session_name(std::string_view name);

/// Parse and validate one request frame (without trailing newline).
/// Returns a Request, or an error response line ready to send.
struct ParsedRequest {
  std::optional<Request> request;  // engaged on success
  std::string error_response;      // non-empty on failure
};
ParsedRequest parse_request(std::string_view frame);

/// Response builders.  Both echo `id` (omitted when null).
std::string make_error(const Json& id, ErrorCode code, std::string_view message);
std::string make_ok(const Json& id, JsonObject payload);

}  // namespace lps::service
