// watchdog.hpp — deadline enforcement for in-flight requests.
//
// A request that carries deadline_ms registers its cancellation token here
// before starting the (potentially long) estimate or optimize, and
// unregisters on completion (RAII — DeadlineGuard).  One background thread
// scans the registry and fires cancel() on every token whose deadline has
// passed; the computation observes it at its next poll point (a shard-chunk
// boundary, a frame batch, or the incremental analyzer's cone sweep — see
// core/parallel.hpp) and unwinds with core::CancelledError, which the
// service maps to a structured "deadline" error response.
//
// Cancellation latency is therefore bounded by the scan period plus the
// work between two poll points — a shard chunk, never the whole request —
// and an overrunning estimate can never wedge the daemon: the watchdog
// needs no cooperation beyond the polls, and firing a token is always safe
// (poll points restore or discard partial state before unwinding).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace lps::service {

class Watchdog {
 public:
  using Clock = std::chrono::steady_clock;

  /// `scan_period` bounds how stale a deadline can get before the token
  /// fires; a few milliseconds costs nothing (the thread sleeps between
  /// scans).
  explicit Watchdog(
      std::chrono::milliseconds scan_period = std::chrono::milliseconds(5));
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Arm `token` to be cancelled once `deadline` passes.  The token must
  /// outlive the registration (DeadlineGuard ties the two lifetimes).
  /// Returns a registration id for disarm().
  std::uint64_t arm(core::CancelToken* token, Clock::time_point deadline);

  /// Remove a registration.  Safe to call after the token already fired —
  /// the request still completed (with a deadline error), it just no longer
  /// needs watching.
  void disarm(std::uint64_t id);

  /// Registrations currently armed (test/stat hook).
  std::size_t armed() const;

  /// Deadlines fired since construction (stat hook).
  std::uint64_t fired() const;

 private:
  struct Entry {
    std::uint64_t id;
    core::CancelToken* token;
    Clock::time_point deadline;
  };

  void scan_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  bool stop_ = false;
  std::chrono::milliseconds period_;
  std::thread thread_;
};

/// RAII deadline registration: arms on construction (when deadline_ms > 0),
/// disarms on destruction.  A zero deadline arms nothing, so call sites can
/// pass the request's deadline_ms through unconditionally.
class DeadlineGuard {
 public:
  DeadlineGuard(Watchdog& dog, core::CancelToken& token,
                std::uint64_t deadline_ms)
      : dog_(&dog), armed_(deadline_ms > 0) {
    if (armed_)
      id_ = dog.arm(&token, Watchdog::Clock::now() +
                                std::chrono::milliseconds(deadline_ms));
  }
  ~DeadlineGuard() {
    if (armed_) dog_->disarm(id_);
  }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;

 private:
  Watchdog* dog_;
  bool armed_;
  std::uint64_t id_ = 0;
};

}  // namespace lps::service
