// sockets.hpp — AF_UNIX transport for the lpsd protocol.
//
// Thin, deliberately boring layer: everything interesting (validation,
// deadlines, isolation) lives in Service, which this file only feeds lines
// to.  The server accepts connections on a filesystem socket and runs one
// thread per connection reading newline-delimited frames; a client helper
// wraps connect/send/receive for lpsc and the tests.
//
// Robustness at this layer:
//   * a frame that grows past kMaxFrameBytes without a newline is answered
//     with a structured bad_frame error and the connection is dropped (the
//     byte stream has no resync point once framing is lost);
//   * client disconnects (EOF, EPIPE, ECONNRESET) terminate that
//     connection's thread only — SIGPIPE is suppressed per-write with
//     MSG_NOSIGNAL, so a vanished client can never kill the daemon;
//   * accept() errors are counted and retried, not fatal.

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/diag.hpp"
#include "service/service.hpp"

namespace lps::service {

/// Serve `svc` on an AF_UNIX socket at `path` until a shutdown request (or
/// stop()).  The socket file is unlinked first (stale socket from a crashed
/// daemon) and on clean exit.
class SocketServer {
 public:
  SocketServer(Service& svc, std::string path);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen.  Error status on failure (path too long for sockaddr_un,
  /// bind/listen errno).
  diag::Status start();

  /// Accept-and-serve until shutdown.  Blocks; run from main() (lpsd) or a
  /// thread (tests).
  void serve();

  /// Ask serve() to return (also triggered by the protocol's "shutdown").
  void stop();

  const std::string& path() const { return path_; }

 private:
  void serve_connection(int fd);

  Service& svc_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

/// Blocking client connection for lpsc and the socket tests.
class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  diag::Status connect(const std::string& path);
  bool connected() const { return fd_ >= 0; }

  /// Send one request line and read one response line.  nullopt on a
  /// transport error (daemon gone, oversized response).
  std::optional<std::string> roundtrip(const std::string& frame);

  /// Send raw bytes without framing discipline (fuzz/chaos tests).
  bool send_raw(const std::string& bytes);
  /// Read one newline-terminated line (without the newline).
  std::optional<std::string> read_line();

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the last newline
};

}  // namespace lps::service
