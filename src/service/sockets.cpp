#include "service/sockets.hpp"

#include <sys/select.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/metrics.hpp"
#include "service/protocol.hpp"

namespace lps::service {

namespace metrics = lps::core::metrics;

namespace {

// write() the whole buffer, suppressing SIGPIPE (a vanished client must
// never signal the daemon).  False on any error.
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, std::string line) {
  line.push_back('\n');
  return send_all(fd, line.data(), line.size());
}

}  // namespace

// ---- server ----------------------------------------------------------------

SocketServer::SocketServer(Service& svc, std::string path)
    : svc_(svc), path_(std::move(path)) {}

SocketServer::~SocketServer() {
  stop();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

diag::Status SocketServer::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path))
    return diag::Status::error("socket path too long: '" + path_ + "'");
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    return diag::Status::error(std::string("socket(): ") +
                               std::strerror(errno));
  ::unlink(path_.c_str());  // stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    return diag::Status::error("bind('" + path_ + "'): " +
                               std::strerror(errno));
  if (::listen(listen_fd_, 64) < 0)
    return diag::Status::error(std::string("listen(): ") +
                               std::strerror(errno));
  return diag::Status::ok();
}

void SocketServer::serve() {
  while (!stop_.load(std::memory_order_relaxed) &&
         !svc_.shutdown_requested()) {
    // Poll accept with a timeout so a shutdown request on an existing
    // connection is noticed without needing a final wake-up connection.
    timeval tv{0, 200 * 1000};
    fd_set fds;
    FD_ZERO(&fds);
    FD_SET(listen_fd_, &fds);
    int r = ::select(listen_fd_ + 1, &fds, nullptr, nullptr, &tv);
    if (r < 0) {
      if (errno == EINTR) continue;
      metrics::count("service.accept_errors");
      continue;
    }
    if (r == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      metrics::count("service.accept_errors");
      continue;
    }
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void SocketServer::stop() { stop_.store(true, std::memory_order_relaxed); }

void SocketServer::serve_connection(int fd) {
  metrics::count("service.connections");
  std::string buf;
  char chunk[65536];
  for (;;) {
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string frame = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!frame.empty() && frame.back() == '\r') frame.pop_back();
      if (frame.empty()) continue;
      if (!send_line(fd, svc_.dispatch(frame))) {
        ::close(fd);
        return;  // client gone mid-response; nothing left to answer
      }
      if (svc_.shutdown_requested()) {
        ::close(fd);
        return;
      }
    }
    if (buf.size() > kMaxFrameBytes) {
      // Framing is lost (no newline within the limit) — answer once and
      // drop the connection; the daemon itself is unaffected.
      send_line(fd, make_error(Json(), ErrorCode::BadFrame,
                               "frame exceeds size limit without newline"));
      ::close(fd);
      return;
    }
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {  // EOF or error: connection done, daemon unaffected
      ::close(fd);
      return;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---- client ----------------------------------------------------------------

SocketClient::~SocketClient() { close(); }

void SocketClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buf_.clear();
}

diag::Status SocketClient::connect(const std::string& path) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    return diag::Status::error("socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    return diag::Status::error(std::string("socket(): ") +
                               std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    diag::Status st = diag::Status::error("connect('" + path + "'): " +
                                          std::strerror(errno));
    close();
    return st;
  }
  return diag::Status::ok();
}

bool SocketClient::send_raw(const std::string& bytes) {
  return fd_ >= 0 && send_all(fd_, bytes.data(), bytes.size());
}

std::optional<std::string> SocketClient::read_line() {
  if (fd_ < 0) return std::nullopt;
  char chunk[65536];
  for (;;) {
    std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    if (buf_.size() > kMaxFrameBytes) return std::nullopt;
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> SocketClient::roundtrip(const std::string& frame) {
  if (!send_raw(frame + "\n")) return std::nullopt;
  return read_line();
}

}  // namespace lps::service
