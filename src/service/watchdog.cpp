#include "service/watchdog.hpp"

#include <algorithm>

namespace lps::service {

Watchdog::Watchdog(std::chrono::milliseconds scan_period)
    : period_(scan_period), thread_([this] { scan_loop(); }) {}

Watchdog::~Watchdog() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::arm(core::CancelToken* token,
                            Clock::time_point deadline) {
  std::lock_guard lk(mu_);
  std::uint64_t id = next_id_++;
  entries_.push_back({id, token, deadline});
  cv_.notify_all();  // a nearer deadline may shorten the current sleep
  return id;
}

void Watchdog::disarm(std::uint64_t id) {
  std::lock_guard lk(mu_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::size_t Watchdog::armed() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

std::uint64_t Watchdog::fired() const {
  std::lock_guard lk(mu_);
  return fired_;
}

void Watchdog::scan_loop() {
  std::unique_lock lk(mu_);
  while (!stop_) {
    auto now = Clock::now();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->deadline <= now) {
        it->token->cancel();
        ++fired_;
        it = entries_.erase(it);  // fired tokens need no further watching
      } else {
        ++it;
      }
    }
    cv_.wait_for(lk, period_, [&] { return stop_; });
  }
}

}  // namespace lps::service
