#include "service/json.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lps::service {

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::set(std::string key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) return;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  // The grammar has no NaN/Infinity; emit null rather than an unparsable
  // token if a computation ever produces one.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Integers (the common protocol case) print exactly; everything else gets
  // round-trippable shortest-ish form.
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: dump_number(num_, out); break;
    case Kind::String: dump_string(str_, out); break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        arr_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        dump_string(obj_[i].first, out);
        out += ':';
        obj_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;
  diag::Status err = diag::Status::ok();

  bool fail(std::size_t at, std::string msg) {
    if (err.is_ok()) {
      diag::SourceLoc loc;
      loc.file = "<frame>";
      loc.line = 1;
      loc.col = static_cast<int>(at) + 1;
      err = diag::Status::error(std::move(msg), loc);
    }
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }

  bool literal(std::string_view lit) {
    if (s.compare(pos, lit.size(), lit) != 0)
      return fail(pos, "invalid token");
    pos += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp <= 0x7F) {
      out += static_cast<char>(cp);
    } else if (cp <= 0x7FF) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp <= 0xFFFF) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t& v) {
    if (pos + 4 > s.size()) return fail(pos, "truncated \\u escape");
    v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return fail(pos + static_cast<std::size_t>(i),
                    "bad hex digit in \\u escape");
    }
    pos += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    // Called with s[pos] == '"'.
    ++pos;
    out.clear();
    while (true) {
      if (pos >= s.size()) return fail(pos, "unterminated string");
      unsigned char c = static_cast<unsigned char>(s[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= s.size()) return fail(pos, "unterminated escape");
        char e = s[pos];
        ++pos;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t u;
            if (!hex4(u)) return false;
            if (u >= 0xD800 && u <= 0xDBFF && pos + 1 < s.size() &&
                s[pos] == '\\' && s[pos + 1] == 'u') {
              std::size_t save = pos;
              pos += 2;
              std::uint32_t lo;
              if (!hex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                u = 0x10000 + ((u - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                pos = save;     // not a low surrogate; leave it for later
                u = 0xFFFD;     // lone high surrogate -> replacement char
              }
            } else if (u >= 0xD800 && u <= 0xDFFF) {
              u = 0xFFFD;  // lone surrogate
            }
            append_utf8(out, u);
            break;
          }
          default:
            return fail(pos - 1, "bad escape character");
        }
        continue;
      }
      if (c < 0x20) return fail(pos, "raw control character in string");
      out += static_cast<char>(c);
      ++pos;
    }
  }

  bool parse_number(double& out) {
    std::size_t start = pos;
    if (pos < s.size() && s[pos] == '-') ++pos;
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
      return fail(pos, "bad number");
    if (s[pos] == '0') {
      ++pos;
    } else {
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    }
    if (pos < s.size() && s[pos] == '.') {
      ++pos;
      if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
        return fail(pos, "bad number: digits required after '.'");
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    }
    if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
        return fail(pos, "bad number: digits required in exponent");
      while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') ++pos;
    }
    // The token is a clean [0-9.eE+-]+ slice; strtod cannot scan past it.
    std::string tok(s.substr(start, pos - start));
    out = std::strtod(tok.c_str(), nullptr);
    if (!std::isfinite(out)) return fail(start, "number out of range");
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kJsonMaxDepth) return fail(pos, "nesting too deep");
    skip_ws();
    if (pos >= s.size()) return fail(pos, "unexpected end of frame");
    char c = s[pos];
    switch (c) {
      case 'n':
        if (!literal("null")) return false;
        out = Json();
        return true;
      case 't':
        if (!literal("true")) return false;
        out = Json(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Json(false);
        return true;
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out = Json(std::move(str));
        return true;
      }
      case '[': {
        ++pos;
        JsonArray arr;
        skip_ws();
        if (pos < s.size() && s[pos] == ']') {
          ++pos;
          out = Json(std::move(arr));
          return true;
        }
        while (true) {
          Json v;
          if (!parse_value(v, depth + 1)) return false;
          arr.push_back(std::move(v));
          skip_ws();
          if (pos >= s.size()) return fail(pos, "unterminated array");
          if (s[pos] == ',') {
            ++pos;
            continue;
          }
          if (s[pos] == ']') {
            ++pos;
            out = Json(std::move(arr));
            return true;
          }
          return fail(pos, "expected ',' or ']' in array");
        }
      }
      case '{': {
        ++pos;
        JsonObject obj;
        skip_ws();
        if (pos < s.size() && s[pos] == '}') {
          ++pos;
          out = Json(std::move(obj));
          return true;
        }
        while (true) {
          skip_ws();
          if (pos >= s.size() || s[pos] != '"')
            return fail(pos, "expected string key in object");
          std::string key;
          if (!parse_string(key)) return false;
          skip_ws();
          if (pos >= s.size() || s[pos] != ':')
            return fail(pos, "expected ':' after object key");
          ++pos;
          Json v;
          if (!parse_value(v, depth + 1)) return false;
          obj.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos >= s.size()) return fail(pos, "unterminated object");
          if (s[pos] == ',') {
            ++pos;
            continue;
          }
          if (s[pos] == '}') {
            ++pos;
            out = Json(std::move(obj));
            return true;
          }
          return fail(pos, "expected ',' or '}' in object");
        }
      }
      default: {
        double num;
        if (c == '-' || (c >= '0' && c <= '9')) {
          if (!parse_number(num)) return false;
          out = Json(num);
          return true;
        }
        return fail(pos, "unexpected character");
      }
    }
  }
};

}  // namespace

std::optional<Json> json_parse(std::string_view text, diag::Status* err) {
  Parser p;
  p.s = text;
  Json out;
  if (!p.parse_value(out, 0)) {
    if (err) *err = p.err;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail(p.pos, "trailing garbage after JSON document");
    if (err) *err = p.err;
    return std::nullopt;
  }
  return out;
}

}  // namespace lps::service
