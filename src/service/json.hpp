// json.hpp — minimal, crash-proof JSON for the service protocol.
//
// The lpsd protocol (protocol.hpp) is line-delimited JSON over a local
// socket, and the daemon's first robustness obligation is that NO byte
// sequence a client sends can crash it or leave it in an undefined state:
// every frame either parses into a Json value or is rejected with a
// positioned diagnostic.  This parser is written for that contract rather
// than for speed or spec arcana:
//
//   * recursive descent with a hard nesting-depth cap (kMaxDepth) — deeply
//     nested "[[[[..." frames hit a structured error, not a stack overflow;
//   * all errors are reported as diag::Status with the 1-based byte column
//     of the offending character (the frame is one line, so line is 1);
//   * numbers are IEEE doubles (protocol integers fit well inside 2^53);
//     NaN/Infinity spellings are rejected as the grammar requires;
//   * \uXXXX escapes decode to UTF-8, pairing surrogates; lone surrogates
//     become U+FFFD instead of an error — a logging daemon must not choke
//     on a client's broken unicode;
//   * object member order is preserved (vector of pairs, not a map): a
//     serialized response replays byte-identically, which the journal
//     replay tests rely on.
//
// No external dependency: the container images this builds on carry no
// JSON library, and the repo's policy is to vendor nothing.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/diag.hpp"

namespace lps::service {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double n) : kind_(Kind::Number), num_(n) {}
  Json(int n) : kind_(Kind::Number), num_(n) {}
  Json(long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(long long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  // Spelled as the raw unsigned types (not std::uint64_t/std::size_t) so
  // the set covers every width without typedef collisions across ABIs.
  Json(unsigned n) : kind_(Kind::Number), num_(n) {}
  Json(unsigned long n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(unsigned long long n)
      : kind_(Kind::Number), num_(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Json(JsonArray a) : kind_(Kind::Array), arr_(std::move(a)) {}
  Json(JsonObject o) : kind_(Kind::Object), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool(bool def = false) const { return is_bool() ? bool_ : def; }
  double as_number(double def = 0.0) const { return is_number() ? num_ : def; }
  const std::string& as_string() const { return str_; }  // empty if not string
  const JsonArray& as_array() const { return arr_; }     // empty if not array
  const JsonObject& as_object() const { return obj_; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object — callers branch on presence instead of catching.
  const Json* find(std::string_view key) const;

  /// Append/overwrite an object member (makes this an object if Null).
  void set(std::string key, Json value);

  /// Serialize to a single line (no newline appended, no pretty-printing;
  /// strings escaped so the result never itself contains '\n').
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Hard recursion cap for json_parse (arrays/objects nested deeper fail
/// with a positioned diagnostic).
inline constexpr int kJsonMaxDepth = 64;

/// Parse one JSON document.  Trailing garbage after the document is an
/// error (a frame is exactly one value).  On failure returns nullopt and,
/// when `err` is non-null, stores a diagnostic whose column is the 1-based
/// byte offset of the offending character.  Never throws, never crashes on
/// any input.
std::optional<Json> json_parse(std::string_view text,
                               diag::Status* err = nullptr);

}  // namespace lps::service
