#include "service/session.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/flows.hpp"
#include "core/metrics.hpp"
#include "netlist/blif.hpp"
#include "power/activity.hpp"

namespace lps::service {

namespace metrics = lps::core::metrics;

std::string format_hash(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

namespace {

std::optional<std::uint64_t> parse_hash(const Json& j) {
  if (!j.is_string()) return std::nullopt;
  const std::string& s = j.as_string();
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return std::nullopt;
  std::uint64_t h = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    char c = s[i];
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return std::nullopt;
    h = (h << 4) | static_cast<std::uint64_t>(d);
  }
  return h;
}

std::optional<GateType> gate_type_from(std::string_view s) {
  if (s == "buf") return GateType::Buf;
  if (s == "not") return GateType::Not;
  if (s == "and") return GateType::And;
  if (s == "or") return GateType::Or;
  if (s == "nand") return GateType::Nand;
  if (s == "nor") return GateType::Nor;
  if (s == "xor") return GateType::Xor;
  if (s == "xnor") return GateType::Xnor;
  if (s == "mux") return GateType::Mux;
  return std::nullopt;
}

// Resolve an op operand into a live node: a number is a NodeId, a string is
// a node name.  Returns kNoNode with `err` set on any problem.
NodeId resolve_node(const Netlist& net, const Json* j, std::string& err,
                    const char* what) {
  if (!j) {
    err = std::string("missing node reference '") + what + "'";
    return kNoNode;
  }
  if (j->is_number()) {
    double d = j->as_number(-1);
    if (d < 0 || d >= static_cast<double>(net.size()) ||
        static_cast<double>(static_cast<NodeId>(d)) != d) {
      err = std::string("'") + what + "' is not a valid node id";
      return kNoNode;
    }
    NodeId id = static_cast<NodeId>(d);
    if (net.is_dead(id)) {
      err = std::string("'") + what + "' refers to a removed node";
      return kNoNode;
    }
    return id;
  }
  if (j->is_string()) {
    auto id = net.find(j->as_string());
    if (!id) {
      err = std::string("no node named '") + j->as_string() + "'";
      return kNoNode;
    }
    return *id;
  }
  err = std::string("'") + what + "' must be a node id or a node name";
  return kNoNode;
}

}  // namespace

Session::Session(std::string name, std::string journal_path)
    : name_(std::move(name)), journal_path_(std::move(journal_path)) {}

void Session::poison(const std::string& why) {
  poisoned_.store(true, std::memory_order_relaxed);
  poison_reason_ = why;
  metrics::count("service.session_poisoned");
}

// ---- edit-script interpreter ----------------------------------------------

std::string Session::apply_ops(Netlist& net, const Json& ops,
                               std::vector<NodeId>* created) {
  if (!ops.is_array()) return "'ops' must be an array";
  if (ops.as_array().empty()) return "'ops' must not be empty";
  std::size_t idx = 0;
  for (const Json& op : ops.as_array()) {
    ++idx;
    auto fail = [&](std::string msg) {
      return "op " + std::to_string(idx) + ": " + std::move(msg);
    };
    if (!op.is_object()) return fail("not an object");
    const Json* kind = op.find("op");
    if (!kind || !kind->is_string())
      return fail("missing string field 'op'");
    const std::string& k = kind->as_string();
    std::string err;

    if (k == "add_input") {
      const Json* name = op.find("name");
      if (!name || !name->is_string() || name->as_string().empty())
        return fail("add_input needs a non-empty 'name'");
      if (net.find(name->as_string()))
        return fail("name '" + name->as_string() + "' already exists");
      NodeId id = net.add_input(name->as_string());
      if (created) created->push_back(id);
    } else if (k == "add_gate") {
      const Json* type = op.find("type");
      if (!type || !type->is_string()) return fail("add_gate needs 'type'");
      auto gt = gate_type_from(type->as_string());
      if (!gt) return fail("unknown gate type '" + type->as_string() + "'");
      const Json* fi = op.find("fanins");
      if (!fi || !fi->is_array()) return fail("add_gate needs 'fanins' array");
      std::vector<NodeId> fanins;
      for (const Json& f : fi->as_array()) {
        NodeId id = resolve_node(net, &f, err, "fanin");
        if (id == kNoNode) return fail(std::move(err));
        fanins.push_back(id);
      }
      if (fanins.size() < gate_min_arity(*gt) ||
          fanins.size() > gate_max_arity(*gt))
        return fail("gate type '" + type->as_string() + "' rejects " +
                    std::to_string(fanins.size()) + " fanins");
      std::string name;
      if (const Json* n = op.find("name")) {
        if (!n->is_string()) return fail("'name' must be a string");
        if (net.find(n->as_string()))
          return fail("name '" + n->as_string() + "' already exists");
        name = n->as_string();
      }
      NodeId id = net.add_gate(*gt, std::move(fanins), std::move(name));
      if (created) created->push_back(id);
    } else if (k == "add_output") {
      NodeId id = resolve_node(net, op.find("node"), err, "node");
      if (id == kNoNode) return fail(std::move(err));
      std::string name;
      if (const Json* n = op.find("name")) {
        if (!n->is_string()) return fail("'name' must be a string");
        name = n->as_string();
      }
      net.add_output(id, std::move(name));
    } else if (k == "replace_fanin") {
      NodeId id = resolve_node(net, op.find("node"), err, "node");
      if (id == kNoNode) return fail(std::move(err));
      NodeId with = resolve_node(net, op.find("with"), err, "with");
      if (with == kNoNode) return fail(std::move(err));
      const Json* ix = op.find("index");
      double d = ix && ix->is_number() ? ix->as_number(-1) : -1;
      if (d < 0 || d >= static_cast<double>(net.node(id).fanins.size()))
        return fail("'index' out of range for node's fanins");
      net.replace_fanin(id, static_cast<std::size_t>(d), with);
    } else if (k == "substitute") {
      NodeId old_n = resolve_node(net, op.find("old"), err, "old");
      if (old_n == kNoNode) return fail(std::move(err));
      NodeId with = resolve_node(net, op.find("with"), err, "with");
      if (with == kNoNode) return fail(std::move(err));
      if (old_n == with) return fail("'old' and 'with' are the same node");
      net.substitute(old_n, with);
    } else if (k == "remove") {
      NodeId id = resolve_node(net, op.find("node"), err, "node");
      if (id == kNoNode) return fail(std::move(err));
      if (!net.node(id).fanouts.empty())
        return fail("node still has fanouts; substitute first");
      net.remove(id);
    } else if (k == "set_size") {
      NodeId id = resolve_node(net, op.find("node"), err, "node");
      if (id == kNoNode) return fail(std::move(err));
      const Json* v = op.find("value");
      double d = v && v->is_number() ? v->as_number(0) : 0;
      if (!(d > 0) || d > 64) return fail("'value' must be in (0, 64]");
      net.node(id).size = d;
    } else if (k == "set_delay") {
      NodeId id = resolve_node(net, op.find("node"), err, "node");
      if (id == kNoNode) return fail(std::move(err));
      const Json* v = op.find("value");
      double d = v && v->is_number() ? v->as_number(-1) : -1;
      if (d < 0 || d > 1e6 || std::floor(d) != d)
        return fail("'value' must be an integer in [0, 1e6]");
      net.node(id).delay = static_cast<int>(d);
    } else if (k == "sweep") {
      net.sweep();
    } else if (k == "strash") {
      net = strash(net);
    } else {
      return fail("unknown op '" + k + "'");
    }
  }
  return {};
}

std::string Session::apply_record(Netlist& net, const Json& record,
                                  const core::CancelToken* cancel) {
  const Json* type = record.find("type");
  if (!type || !type->is_string()) return "journal record missing 'type'";
  if (type->as_string() == "mutate") {
    const Json* ops = record.find("ops");
    if (!ops) return "mutate record missing 'ops'";
    net.begin_undo();
    std::string err = apply_ops(net, *ops, nullptr);
    if (err.empty()) {
      err = net.check();
      if (!err.empty()) err = "replayed netlist invalid: " + err;
    }
    if (!err.empty()) {
      net.rollback_undo();
      return err;
    }
    net.commit_undo();
    return {};
  }
  if (type->as_string() == "optimize") {
    const Json* flow = record.find("flow");
    if (!flow || !flow->is_string()) return "optimize record missing 'flow'";
    core::FlowOptions fo;
    fo.estimate_mode = power::ActivityMode::ZeroDelay;
    fo.sim_vectors = cfg_.vectors;
    fo.seed = cfg_.seed;
    fo.cancel = cancel;
    if (flow->as_string() == "combinational")
      net = core::optimize_combinational(net, fo).circuit;
    else if (flow->as_string() == "sequential")
      net = core::optimize_sequential(net, fo).circuit;
    else
      return "unknown flow '" + flow->as_string() + "'";
    return {};
  }
  return "unknown journal record type '" + type->as_string() + "'";
}

std::string Session::replay(Netlist& net, std::size_t n_records,
                            const core::CancelToken* cancel) {
  diag::DiagEngine eng(8);
  auto parsed = blif::parse_string(base_blif_, eng, "<journal-base>");
  if (!parsed) {
    const diag::Diagnostic* d = eng.first_error();
    return "journal base BLIF failed to parse: " + (d ? d->str() : eng.str());
  }
  net = std::move(*parsed);
  for (std::size_t i = 0; i < n_records && i < records_.size(); ++i) {
    core::poll_cancel(cancel);
    std::string err = apply_record(net, records_[i], cancel);
    if (!err.empty())
      return "journal record " + std::to_string(i + 1) + ": " + err;
    if (const Json* h = records_[i].find("hash")) {
      auto want = parse_hash(*h);
      if (!want || *want != structural_hash(net))
        return "journal record " + std::to_string(i + 1) +
               ": structural hash mismatch after replay";
    }
  }
  return {};
}

// ---- analyzer lifecycle ----------------------------------------------------

void Session::rebuild_analyzer(const core::CancelToken* cancel) {
  analyzer_.reset();
  power::AnalysisOptions ao;
  ao.mode = power::ActivityMode::ZeroDelay;
  ao.n_vectors = cfg_.vectors;
  ao.seed = cfg_.seed;
  ao.cancel = cancel;
  try {
    analyzer_.emplace(net_, ao);
    // The request token dies with the request; the analyzer does not.
    // Unbind it so a later reanalyze never polls a dangling pointer —
    // mutate() rebinds its own token around each update.
    analyzer_->set_cancel(nullptr);
    evicted_ = false;
  } catch (const core::CancelledError&) {
    throw;  // deadline: caller maps to a Deadline error, state is consistent
  } catch (...) {
    // Degradation: the session works without an analyzer (estimates run
    // full analyses); never fatal.
    analyzer_.reset();
    metrics::count("service.analyzer_fallback");
  }
  update_cache_bytes();
}

void Session::update_cache_bytes() {
  std::size_t b = 0;
  if (analyzer_) {
    // Approximation: the ZeroDelay trace stores one 64-bit word per node
    // per frame plus two 64-bit counters per node; the compiled tape is on
    // the order of tens of bytes per node.
    std::size_t frames = power::zero_delay_frames(cfg_.vectors);
    b = net_.size() * (frames + 2) * sizeof(std::uint64_t) + net_.size() * 64;
  }
  cache_bytes_.store(b, std::memory_order_relaxed);
}

void Session::evict_caches() {
  analyzer_.reset();
  evicted_ = true;
  cache_bytes_.store(0, std::memory_order_relaxed);
  metrics::count("service.evictions");
}

// ---- journal I/O -----------------------------------------------------------

bool Session::journal_rewrite() {
  if (journal_path_.empty()) return true;
  std::string tmp = journal_path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    // The base hash is of the *parsed* base BLIF, which replays start
    // from — not of net_ (committed records may follow the base).
    diag::DiagEngine eng(2);
    auto parsed = blif::parse_string(base_blif_, eng);
    if (!parsed) return false;
    Json base;
    base.set("type", Json("base"));
    base.set("hash", Json(format_hash(structural_hash(*parsed))));
    base.set("blif", Json(base_blif_));
    os << base.dump() << '\n';
    for (const Json& r : records_) os << r.dump() << '\n';
    os.flush();
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), journal_path_.c_str()) == 0;
}

bool Session::journal_append(const Json& record) {
  if (journal_path_.empty()) return true;
  std::FILE* f = std::fopen(journal_path_.c_str(), "ab");
  if (!f) return false;
  std::string line = record.dump();
  line.push_back('\n');
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

// ---- verbs -----------------------------------------------------------------

OpResult Session::load(const std::string& blif_text, std::size_t vectors,
                       std::uint64_t seed, bool build_analyzer,
                       const core::CancelToken* cancel) {
  diag::DiagEngine eng(8);
  auto parsed = blif::parse_string(blif_text, eng, "<load>");
  if (!parsed) {
    const diag::Diagnostic* d = eng.first_error();
    return OpResult::error(ErrorCode::ParseError,
                           d ? d->str() : "BLIF parse failed",
                           d ? d->loc : diag::SourceLoc{});
  }
  // Parse succeeded: replace the session state wholesale.  A load also
  // clears a poisoned flag — it is the recovery verb for a wedged session.
  net_ = std::move(*parsed);
  hash_ = structural_hash(net_);
  cfg_.vectors = vectors ? vectors : 2048;
  cfg_.seed = seed;
  // The journal base is the text we just parsed — replaying it trivially
  // reproduces net_ (re-serializing would gratuitously depend on writer
  // round-trip fidelity).
  base_blif_ = blif_text;
  records_.clear();
  loaded_ = true;
  poisoned_.store(false, std::memory_order_relaxed);
  poison_reason_.clear();
  est_cached_ = est_full_ = est_degraded_ = 0;
  if (build_analyzer)
    rebuild_analyzer(cancel);  // CancelledError propagates; state stays valid
  else {
    analyzer_.reset();
    update_cache_bytes();
  }
  if (!journal_rewrite())
    metrics::count("service.journal_write_failed");
  JsonObject payload;
  payload.emplace_back("gates", Json(net_.num_live()));
  payload.emplace_back("inputs", Json(net_.inputs().size()));
  payload.emplace_back("outputs", Json(net_.outputs().size()));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  return OpResult::ok(std::move(payload));
}

OpResult Session::mutate(const Json& ops, const core::CancelToken* cancel) {
  if (!loaded_)
    return OpResult::error(ErrorCode::NoSession, "session has no netlist");
  // Build the analyzer lazily if an eviction (or a load with
  // build_analyzer=false) dropped it — mutate is an exclusive context.
  if (!analyzer_) rebuild_analyzer(cancel);

  net_.begin_undo();
  std::string err = apply_ops(net_, ops, nullptr);
  if (err.empty()) {
    err = net_.check();
    if (!err.empty()) err = "edit script breaks invariants: " + err;
  }
  if (!err.empty()) {
    net_.rollback_undo();
    return OpResult::error(ErrorCode::MutateError, std::move(err));
  }

  // Advance the analyzer BEFORE committing: if the re-estimate is cancelled
  // (deadline) the analyzer restores its own caches and we roll the netlist
  // back, leaving the session exactly as before the request — a cancelled
  // mutate is all-or-nothing, like a killed one.
  auto touched = net_.touched_nodes();
  if (analyzer_) {
    analyzer_->set_cancel(cancel);  // bound only for this update
    try {
      analyzer_->reanalyze(touched);
      analyzer_->set_cancel(nullptr);
    } catch (const core::CancelledError&) {
      analyzer_->set_cancel(nullptr);
      net_.rollback_undo();
      return OpResult::error(ErrorCode::Deadline,
                             "deadline exceeded during re-estimate; "
                             "mutation rolled back");
    } catch (...) {
      // Degradation ladder: the estimate is advisory for a mutate — drop
      // the analyzer (caches already self-restored) and keep the edit.
      analyzer_.reset();
      metrics::count("service.analyzer_fallback");
    }
  }
  net_.commit_undo();
  hash_ = structural_hash(net_);
  update_cache_bytes();

  Json record;
  record.set("type", Json("mutate"));
  record.set("ops", ops);
  record.set("hash", Json(format_hash(hash_)));
  records_.push_back(record);
  if (!journal_append(record))
    metrics::count("service.journal_write_failed");

  JsonObject payload;
  payload.emplace_back("gates", Json(net_.num_live()));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  payload.emplace_back("journal_records", Json(records_.size()));
  if (analyzer_) {
    const auto& st = analyzer_->last_update();
    payload.emplace_back("resim_nodes", Json(st.resim_nodes));
    payload.emplace_back("power_w",
                         Json(analyzer_->analysis().report.breakdown.total_w()));
  }
  return OpResult::ok(std::move(payload));
}

OpResult Session::estimate(const Json& params, const core::CancelToken* cancel) {
  if (!loaded_)
    return OpResult::error(ErrorCode::NoSession, "session has no netlist");

  std::size_t vectors = cfg_.vectors;
  std::uint64_t seed = cfg_.seed;
  bool timed = false;
  if (const Json* v = params.find("vectors")) {
    double d = v->is_number() ? v->as_number(0) : 0;
    if (!(d >= 64) || d > 1e7 || std::floor(d) != d)
      return OpResult::error(ErrorCode::BadRequest,
                             "'vectors' must be an integer in [64, 1e7]");
    vectors = static_cast<std::size_t>(d);
  }
  if (const Json* s = params.find("seed")) {
    double d = s->is_number() ? s->as_number(-1) : -1;
    if (!(d >= 0) || std::floor(d) != d)
      return OpResult::error(ErrorCode::BadRequest,
                             "'seed' must be a non-negative integer");
    seed = static_cast<std::uint64_t>(d);
  }
  if (const Json* m = params.find("mode")) {
    if (!m->is_string() ||
        (m->as_string() != "zero_delay" && m->as_string() != "timed"))
      return OpResult::error(ErrorCode::BadRequest,
                             "'mode' must be \"zero_delay\" or \"timed\"");
    timed = m->as_string() == "timed";
  }

  const power::Analysis* cached = nullptr;
  if (!timed && analyzer_ && vectors == cfg_.vectors && seed == cfg_.seed)
    cached = &analyzer_->analysis();

  power::Analysis fresh;
  if (!cached) {
    power::AnalysisOptions ao;
    ao.mode = timed ? power::ActivityMode::Timed : power::ActivityMode::ZeroDelay;
    ao.n_vectors = vectors;
    ao.seed = seed;
    ao.cancel = cancel;
    // CancelledError propagates to the dispatcher (Deadline response);
    // analyze() is pure, nothing to restore.
    fresh = power::analyze(net_, ao);
    est_full_.fetch_add(1, std::memory_order_relaxed);
    if (evicted_) est_degraded_.fetch_add(1, std::memory_order_relaxed);
  } else {
    est_cached_.fetch_add(1, std::memory_order_relaxed);
  }
  const power::Analysis& a = cached ? *cached : fresh;

  JsonObject payload;
  payload.emplace_back("power_w", Json(a.report.breakdown.total_w()));
  payload.emplace_back("switching_w", Json(a.report.breakdown.switching_w));
  payload.emplace_back("short_circuit_w",
                       Json(a.report.breakdown.short_circuit_w));
  payload.emplace_back("leakage_w", Json(a.report.breakdown.leakage_w));
  payload.emplace_back("weighted_activity", Json(a.report.weighted_activity));
  payload.emplace_back("glitch_fraction", Json(a.glitch_fraction));
  payload.emplace_back("vectors_used", Json(a.vectors_used));
  payload.emplace_back("cached", Json(cached != nullptr));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  return OpResult::ok(std::move(payload));
}

OpResult Session::optimize(const Json& params, const core::CancelToken* cancel) {
  if (!loaded_)
    return OpResult::error(ErrorCode::NoSession, "session has no netlist");
  std::string flow = "combinational";
  if (const Json* f = params.find("flow")) {
    if (!f->is_string() ||
        (f->as_string() != "combinational" && f->as_string() != "sequential"))
      return OpResult::error(
          ErrorCode::BadRequest,
          "'flow' must be \"combinational\" or \"sequential\"");
    flow = f->as_string();
  }
  core::FlowOptions fo;
  fo.estimate_mode = power::ActivityMode::ZeroDelay;
  fo.sim_vectors = cfg_.vectors;
  fo.seed = cfg_.seed;
  fo.cancel = cancel;
  // Optional speculation worker count for the optimization engines.  The
  // result is bit-identical at any value (only wall-clock changes), so the
  // journal record deliberately omits it: a crash replay at a different
  // worker count reconstructs the same circuit.
  if (const Json* w = params.find("workers")) {
    double d = w->is_number() ? w->as_number(-1) : -1;
    if (!(d >= 1) || d > 256 || std::floor(d) != d)
      return OpResult::error(ErrorCode::BadRequest,
                             "'workers' must be an integer in [1, 256]");
    fo.opt_workers = static_cast<int>(d);
  }

  // The flow works on a copy; a cancellation (or failure) leaves the
  // session untouched.  CancelledError maps to a Deadline error here rather
  // than in the dispatcher so the message can say what was (not) kept.
  core::FlowResult res;
  try {
    res = flow == "combinational" ? core::optimize_combinational(net_, fo)
                                  : core::optimize_sequential(net_, fo);
  } catch (const core::CancelledError&) {
    return OpResult::error(ErrorCode::Deadline,
                           "deadline exceeded during optimize; "
                           "session unchanged");
  }

  double before = res.stages.empty() ? 0.0 : res.stages.front().power_w;
  net_ = std::move(res.circuit);
  hash_ = structural_hash(net_);
  rebuild_analyzer(cancel);

  Json record;
  record.set("type", Json("optimize"));
  record.set("flow", Json(flow));
  record.set("hash", Json(format_hash(hash_)));
  records_.push_back(record);
  if (!journal_append(record))
    metrics::count("service.journal_write_failed");

  const core::StageReport* last = res.last_kept_stage();
  JsonObject payload;
  payload.emplace_back("flow", Json(flow));
  payload.emplace_back("stages", Json(res.stages.size()));
  payload.emplace_back("power_before_w", Json(before));
  payload.emplace_back("power_after_w", Json(last ? last->power_w : before));
  payload.emplace_back("saving", Json(res.saving()));
  payload.emplace_back("gates", Json(net_.num_live()));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  payload.emplace_back("journal_records", Json(records_.size()));
  return OpResult::ok(std::move(payload));
}

OpResult Session::rollback(const core::CancelToken* cancel) {
  if (!loaded_)
    return OpResult::error(ErrorCode::NoSession, "session has no netlist");
  if (records_.empty())
    return OpResult::error(ErrorCode::NothingToDo,
                           "journal has no committed records to roll back");
  Netlist rebuilt;
  std::string err = replay(rebuilt, records_.size() - 1, cancel);
  if (!err.empty())
    return OpResult::error(ErrorCode::Internal, "rollback replay: " + err);
  records_.pop_back();
  net_ = std::move(rebuilt);
  hash_ = structural_hash(net_);
  rebuild_analyzer(cancel);
  if (!journal_rewrite())
    metrics::count("service.journal_write_failed");
  JsonObject payload;
  payload.emplace_back("gates", Json(net_.num_live()));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  payload.emplace_back("journal_records", Json(records_.size()));
  return OpResult::ok(std::move(payload));
}

JsonObject Session::stat() const {
  JsonObject o;
  o.emplace_back("name", Json(name_));
  o.emplace_back("loaded", Json(loaded_));
  o.emplace_back("poisoned", Json(poisoned()));
  if (poisoned()) o.emplace_back("poison_reason", Json(poison_reason_));
  if (loaded_) {
    o.emplace_back("gates", Json(net_.num_live()));
    o.emplace_back("inputs", Json(net_.inputs().size()));
    o.emplace_back("outputs", Json(net_.outputs().size()));
    o.emplace_back("hash", Json(format_hash(hash_)));
    o.emplace_back("journal_records", Json(records_.size()));
  }
  o.emplace_back("analyzer", Json(analyzer_.has_value()));
  o.emplace_back("cache_bytes", Json(cache_bytes()));
  o.emplace_back("estimates_cached",
                 Json(est_cached_.load(std::memory_order_relaxed)));
  o.emplace_back("estimates_full",
                 Json(est_full_.load(std::memory_order_relaxed)));
  o.emplace_back("estimates_degraded",
                 Json(est_degraded_.load(std::memory_order_relaxed)));
  return o;
}

OpResult Session::recover(const core::CancelToken* cancel) {
  if (journal_path_.empty())
    return OpResult::error(ErrorCode::Internal, "session has no journal file");
  std::ifstream is(journal_path_, std::ios::binary);
  if (!is)
    return OpResult::error(ErrorCode::Internal,
                           "cannot open journal '" + journal_path_ + "'");
  std::string line;
  std::vector<Json> lines;
  bool torn = false;
  while (std::getline(is, line)) {
    // A torn final line (the daemon died mid-append) is detected by its
    // JSON being incomplete — a partial fwrite of a record cannot parse.
    // The record never committed, so ending the journal there is correct.
    auto doc = json_parse(line);
    if (!doc || !doc->is_object()) {
      torn = true;
      break;
    }
    lines.push_back(std::move(*doc));
  }
  if (lines.empty())
    return OpResult::error(ErrorCode::Internal,
                           "journal has no valid base record");
  const Json* type = lines[0].find("type");
  const Json* blif_j = lines[0].find("blif");
  if (!type || !type->is_string() || type->as_string() != "base" || !blif_j ||
      !blif_j->is_string())
    return OpResult::error(ErrorCode::Internal,
                           "journal base record malformed");

  base_blif_ = blif_j->as_string();
  records_.assign(lines.begin() + 1, lines.end());

  // Replay; a failing or hash-mismatching record truncates the journal at
  // that point (replay() validated everything before it), so retry with
  // progressively shorter prefixes.
  std::size_t keep = records_.size();
  Netlist rebuilt;
  std::string err;
  for (;;) {
    err = replay(rebuilt, keep, cancel);
    if (err.empty()) break;
    if (keep == 0) {
      records_.clear();
      return OpResult::error(ErrorCode::Internal,
                             "journal base replay failed: " + err);
    }
    --keep;
    torn = true;
  }
  bool truncated = torn || keep != records_.size();
  records_.resize(keep);
  net_ = std::move(rebuilt);
  hash_ = structural_hash(net_);
  loaded_ = true;
  poisoned_.store(false, std::memory_order_relaxed);
  rebuild_analyzer(cancel);
  if (truncated && !journal_rewrite())
    metrics::count("service.journal_write_failed");
  if (truncated) metrics::count("service.journal_truncated");
  metrics::count("service.sessions_recovered");

  JsonObject payload;
  payload.emplace_back("gates", Json(net_.num_live()));
  payload.emplace_back("hash", Json(format_hash(hash_)));
  payload.emplace_back("journal_records", Json(records_.size()));
  payload.emplace_back("truncated", Json(truncated));
  return OpResult::ok(std::move(payload));
}

}  // namespace lps::service
