#include "service/protocol.hpp"

#include <cmath>

namespace lps::service {

std::string_view to_string(Verb v) {
  switch (v) {
    case Verb::Load: return "load";
    case Verb::Mutate: return "mutate";
    case Verb::Estimate: return "estimate";
    case Verb::Optimize: return "optimize";
    case Verb::Rollback: return "rollback";
    case Verb::Stat: return "stat";
    case Verb::Ping: return "ping";
    case Verb::Shutdown: return "shutdown";
  }
  return "?";
}

std::string_view to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::BadFrame: return "bad_frame";
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::UnknownVerb: return "unknown_verb";
    case ErrorCode::BadSession: return "bad_session";
    case ErrorCode::NoSession: return "no_session";
    case ErrorCode::SessionPoisoned: return "session_poisoned";
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::MutateError: return "mutate_error";
    case ErrorCode::Deadline: return "deadline";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::NothingToDo: return "nothing_to_do";
  }
  return "?";
}

bool valid_session_name(std::string_view name) {
  if (name.empty() || name.size() > 64) return false;
  if (name == "." || name == "..") return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string make_error(const Json& id, ErrorCode code,
                       std::string_view message) {
  Json resp;
  resp.set("ok", Json(false));
  if (!id.is_null()) resp.set("id", id);
  Json err;
  err.set("code", Json(std::string(to_string(code))));
  err.set("message", Json(std::string(message)));
  resp.set("error", std::move(err));
  return resp.dump();
}

std::string make_ok(const Json& id, JsonObject payload) {
  Json resp;
  resp.set("ok", Json(true));
  if (!id.is_null()) resp.set("id", id);
  for (auto& [k, v] : payload) resp.set(std::move(k), std::move(v));
  return resp.dump();
}

namespace {

std::optional<Verb> verb_from(std::string_view s) {
  if (s == "load") return Verb::Load;
  if (s == "mutate") return Verb::Mutate;
  if (s == "estimate") return Verb::Estimate;
  if (s == "optimize") return Verb::Optimize;
  if (s == "rollback") return Verb::Rollback;
  if (s == "stat") return Verb::Stat;
  if (s == "ping") return Verb::Ping;
  if (s == "shutdown") return Verb::Shutdown;
  return std::nullopt;
}

bool needs_session(Verb v) {
  switch (v) {
    case Verb::Load:
    case Verb::Mutate:
    case Verb::Estimate:
    case Verb::Optimize:
    case Verb::Rollback:
      return true;
    case Verb::Stat:
    case Verb::Ping:
    case Verb::Shutdown:
      return false;
  }
  return false;
}

}  // namespace

ParsedRequest parse_request(std::string_view frame) {
  ParsedRequest out;
  if (frame.size() > kMaxFrameBytes) {
    out.error_response =
        make_error(Json(), ErrorCode::BadFrame, "frame exceeds size limit");
    return out;
  }
  diag::Status err = diag::Status::ok();
  auto doc = json_parse(frame, &err);
  if (!doc) {
    out.error_response = make_error(
        Json(), ErrorCode::BadFrame,
        err.is_ok() ? std::string("unparsable frame") : err.diagnostic().str());
    return out;
  }
  // The id is echoed even on schema errors so a pipelining client can match
  // the failure to its request — but only once we know the frame parsed.
  Json id;
  if (const Json* j = doc->find("id")) id = *j;
  if (!doc->is_object()) {
    out.error_response =
        make_error(id, ErrorCode::BadFrame, "frame is not a JSON object");
    return out;
  }
  const Json* v = doc->find("verb");
  if (!v || !v->is_string()) {
    out.error_response =
        make_error(id, ErrorCode::BadRequest, "missing string field 'verb'");
    return out;
  }
  auto verb = verb_from(v->as_string());
  if (!verb) {
    out.error_response = make_error(id, ErrorCode::UnknownVerb,
                                    "unknown verb '" + v->as_string() + "'");
    return out;
  }
  Request req;
  req.verb = *verb;
  req.id = id;
  if (const Json* s = doc->find("session")) {
    if (!s->is_string()) {
      out.error_response =
          make_error(id, ErrorCode::BadRequest, "'session' must be a string");
      return out;
    }
    if (!valid_session_name(s->as_string())) {
      out.error_response = make_error(
          id, ErrorCode::BadSession,
          "illegal session name (want [A-Za-z0-9_.-]{1,64}): '" +
              s->as_string() + "'");
      return out;
    }
    req.session = s->as_string();
  }
  if (needs_session(*verb) && req.session.empty()) {
    out.error_response =
        make_error(id, ErrorCode::BadRequest,
                   std::string("verb '") + std::string(to_string(*verb)) +
                       "' requires a 'session'");
    return out;
  }
  if (const Json* d = doc->find("deadline_ms")) {
    double n = d->is_number() ? d->as_number(-1) : -1;
    if (!(n >= 0) || n > 1e9 || std::floor(n) != n) {
      out.error_response = make_error(
          id, ErrorCode::BadRequest,
          "'deadline_ms' must be an integer in [0, 1e9] milliseconds");
      return out;
    }
    req.deadline_ms = static_cast<std::uint64_t>(n);
  }
  req.params = std::move(*doc);
  out.request = std::move(req);
  return out;
}

}  // namespace lps::service
