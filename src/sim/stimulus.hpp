// stimulus.hpp — input stream models.
//
// Several surveyed techniques are sensitive to input statistics rather than
// just circuit structure: bus coding (§III-C.1) depends on word-to-word
// correlation, architecture power models [21,22] are calibrated against
// "known signal statistics", and precomputation gains depend on the
// distribution of the observed bits.  This module provides deterministic
// generators for the stream classes those papers use.

#pragma once

#include <cstdint>
#include <vector>

namespace lps::sim {

/// A stream of W-bit words (LSB-first bit significance).
using WordStream = std::vector<std::uint64_t>;

/// Uniform iid words over [0, 2^width).
WordStream uniform_stream(int width, std::size_t n, std::uint64_t seed);

/// Lag-1 correlated stream: each word is the previous word with each bit
/// independently flipped with probability `flip_prob` (small flip_prob =
/// strongly correlated, e.g. slowly-varying sampled data).
WordStream correlated_stream(int width, std::size_t n, double flip_prob,
                             std::uint64_t seed);

/// Gaussian-random-walk stream, the standard model for DSP data buses:
/// w[t] = clamp(w[t-1] + round(N(0, sigma))).  Exhibits the high LSB /
/// low MSB activity profile exploited by the dual-bit-type macromodels.
WordStream random_walk_stream(int width, std::size_t n, double sigma,
                              std::uint64_t seed);

/// Sequential addresses with occasional jumps (instruction-address model for
/// gray-code / bus studies): increments by 1 with probability `p_seq`, else
/// jumps uniformly.
WordStream address_stream(int width, std::size_t n, double p_seq,
                          std::uint64_t seed);

/// Total bit transitions between consecutive words (the §III-C.1 bus cost).
std::size_t count_bus_transitions(const WordStream& s, int width);

/// Per-bit signal probabilities of a stream.
std::vector<double> stream_bit_probabilities(const WordStream& s, int width);

}  // namespace lps::sim
