// kernels_avx2.cpp — 256-bit kernel build.  This TU (alone) is compiled
// with -mavx2, so EVERY function here may contain AVX2 instructions —
// including the block 1/2 fallback instantiations, which use ScalarOps
// logic but this TU's codegen.  Callers must therefore only enter through
// these exports when resolve_simd() reported Avx2 or wider.

#include "sim/kernels.hpp"

#if defined(LPS_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <stdexcept>

#include "sim/kernels_impl.hpp"

namespace lps::sim::kern {

namespace {

/// 256-bit word-vector traits: 4 uint64 words per op.  Bitwise ops are
/// exact per lane, so results match ScalarOps bit for bit.
struct Avx2Ops {
  using V = __m256i;
  static constexpr unsigned kWords = 4;
  static V load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zero() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V band(V a, V b) { return _mm256_and_si256(a, b); }
  static V bor(V a, V b) { return _mm256_or_si256(a, b); }
  static V bxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V bnot(V a) { return _mm256_xor_si256(a, ones()); }
  static V bandnot(V a, V b) { return _mm256_andnot_si256(a, b); }  // ~a & b
};

}  // namespace

void exec_linear_avx2(const std::uint32_t* p, const std::uint32_t* end,
                      std::uint64_t* val, std::size_t block) {
  switch (block) {
    case 1: exec_linear_v<ScalarOps, 1>(p, end, val); break;
    case 2: exec_linear_v<ScalarOps, 2>(p, end, val); break;
    case 4: exec_linear_v<Avx2Ops, 4>(p, end, val); break;
    case 8: exec_linear_v<Avx2Ops, 8>(p, end, val); break;
    case 16: exec_linear_v<Avx2Ops, 16>(p, end, val); break;
    default:
      throw std::invalid_argument("exec_linear_avx2: unsupported block");
  }
}

void exec_list_avx2(const std::uint32_t* tape, const std::uint32_t* offset,
                    std::span<const NodeId> gates, std::uint64_t* val,
                    std::size_t block) {
  switch (block) {
    case 1: exec_list_v<ScalarOps, 1>(tape, offset, gates, val); break;
    case 2: exec_list_v<ScalarOps, 2>(tape, offset, gates, val); break;
    case 4: exec_list_v<Avx2Ops, 4>(tape, offset, gates, val); break;
    case 8: exec_list_v<Avx2Ops, 8>(tape, offset, gates, val); break;
    case 16: exec_list_v<Avx2Ops, 16>(tape, offset, gates, val); break;
    default:
      throw std::invalid_argument("exec_list_avx2: unsupported block");
  }
}

// This TU is built with -mpopcnt (every AVX-capable CPU has POPCNT), so
// std::popcount in the counting loop is the hardware instruction; the
// scalar TU keeps the baseline-portable software fold.
void count_columns_avx2(const std::uint64_t* val,
                        std::span<const NodeId> nodes, std::size_t block,
                        std::size_t b, bool first, std::uint64_t* ones,
                        std::uint64_t* toggles, std::uint64_t* last) {
  count_columns_impl(val, nodes, block, b, first, ones, toggles, last);
}

}  // namespace lps::sim::kern

#endif  // LPS_HAVE_AVX2_KERNELS
