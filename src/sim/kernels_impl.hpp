// kernels_impl.hpp — the compiled tape's record format and the templated
// execution kernels, shared source of every ISA-specific translation unit.
//
// The tape (sim/compiled.hpp) is one contiguous std::uint32_t array of
// packed records:
//   [opcode | n_fanins << 8] [output node] [fanin node]*n_fanins
// and every kernel executes records over a block of B 64-bit words per node
// (node id `n`'s words at val[n*B .. n*B+B-1]).  This header provides the
// record walk templated over a *word-vector traits* type W — a bundle of
// load/store/and/or/xor/not primitives over W::kWords adjacent words — so
// the same fold logic instantiates as scalar code, AVX2 code (4 words per
// op) or AVX-512 code (8 words per op) depending on which traits the
// including translation unit supplies.
//
// Bit-equality contract: every opcode is the same bitwise expression
// eval_gate (netlist.cpp) computes, with n-ary operands folded in fanin
// order, and SIMD bitwise ops are exact per lane — so every instantiation
// produces bit-identical value words.  tests/test_simd.cpp enforces this
// differentially across the width × block × thread matrix.
//
// ODR / ISA-safety: everything here lives in an unnamed namespace ON
// PURPOSE.  kernels_avx2.cpp is compiled with -mavx2 and kernels_avx512.cpp
// with -mavx512*; if the template instantiations had external linkage the
// linker would merge, say, exec_record_v<ScalarOps, 4> across translation
// units and could keep the copy compiled with AVX-512 codegen — which the
// scalar fallback path would then execute on a machine without AVX-512.
// Internal linkage gives each TU its own instantiations, so code compiled
// with wide-ISA flags is only ever reachable through that TU's exported
// entry points, which dispatch (sim/simd.hpp) guards behind a CPUID probe.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "netlist/netlist.hpp"

namespace lps::sim::kern {

/// Offset-table sentinel: node has no tape record (dead / source / Dff).
inline constexpr std::uint32_t kNoRecord = 0xFFFFFFFFu;

/// Tape opcodes: specialized forms for the dominant small gates, n-ary
/// folds for everything wider.
enum class Op : std::uint8_t {
  Const0,
  Const1,
  Buf,
  Not,
  And2,
  Or2,
  Nand2,
  Nor2,
  Xor2,
  Xnor2,
  Mux,
  AndN,
  OrN,
  NandN,
  NorN,
  XorN,
  XnorN,
};

namespace {  // internal linkage per TU — see the ODR note above

/// Scalar word-vector traits: one 64-bit word per op.  The baseline every
/// ISA-specific traits type must match bit for bit.
struct ScalarOps {
  using V = std::uint64_t;
  static constexpr unsigned kWords = 1;
  static V load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, V v) { *p = v; }
  static V zero() { return 0; }
  static V ones() { return ~0ULL; }
  static V band(V a, V b) { return a & b; }
  static V bor(V a, V b) { return a | b; }
  static V bxor(V a, V b) { return a ^ b; }
  static V bnot(V a) { return ~a; }
  static V bandnot(V a, V b) { return ~a & b; }  // AND-NOT: ~a & b
};

// Execute one record over a block of B words per node and return the
// pointer past the record.  W::kWords must divide B.  Each opcode is the
// same bitwise expression eval_gate (netlist.cpp) computes, with n-ary
// operands folded in fanin order — this is what makes tape frames
// bit-identical to LogicSim's at any vector width.
template <typename W, unsigned B>
inline const std::uint32_t* exec_record_v(const std::uint32_t* p,
                                          std::uint64_t* val) {
  static_assert(B % W::kWords == 0, "block must be a multiple of the lanes");
  constexpr unsigned kV = B / W::kWords;  // vector ops per node block
  using V = typename W::V;
  const std::uint32_t h = *p++;
  const std::uint32_t n = h >> 8;
  // The network is acyclic, so a record's output slot never aliases any of
  // its operand slots; restrict keeps the stores independent of the loads.
  std::uint64_t* __restrict out = val + static_cast<std::size_t>(*p++) * B;
  auto in = [&](std::uint32_t i) {
    return static_cast<const std::uint64_t*>(
        val + static_cast<std::size_t>(p[i]) * B);
  };
  switch (static_cast<Op>(h & 0xFFu)) {
    case Op::Const0:
      for (unsigned v = 0; v < kV; ++v) W::store(out + v * W::kWords, W::zero());
      break;
    case Op::Const1:
      for (unsigned v = 0; v < kV; ++v) W::store(out + v * W::kWords, W::ones());
      break;
    case Op::Buf: {
      const std::uint64_t* a = in(0);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::load(a + v * W::kWords));
      break;
    }
    case Op::Not: {
      const std::uint64_t* a = in(0);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bnot(W::load(a + v * W::kWords)));
      break;
    }
    case Op::And2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::band(W::load(a + v * W::kWords),
                                              W::load(b + v * W::kWords)));
      break;
    }
    case Op::Or2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bor(W::load(a + v * W::kWords),
                                             W::load(b + v * W::kWords)));
      break;
    }
    case Op::Nand2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords,
                 W::bnot(W::band(W::load(a + v * W::kWords),
                                 W::load(b + v * W::kWords))));
      break;
    }
    case Op::Nor2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords,
                 W::bnot(W::bor(W::load(a + v * W::kWords),
                                W::load(b + v * W::kWords))));
      break;
    }
    case Op::Xor2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bxor(W::load(a + v * W::kWords),
                                              W::load(b + v * W::kWords)));
      break;
    }
    case Op::Xnor2: {
      const std::uint64_t *a = in(0), *b = in(1);
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords,
                 W::bnot(W::bxor(W::load(a + v * W::kWords),
                                 W::load(b + v * W::kWords))));
      break;
    }
    case Op::Mux: {
      // fanins: s, a, b -> s ? b : a  (eval_gate's (~s & a) | (s & b))
      const std::uint64_t *s = in(0), *a = in(1), *b = in(2);
      for (unsigned v = 0; v < kV; ++v) {
        V sv = W::load(s + v * W::kWords);
        W::store(out + v * W::kWords,
                 W::bor(W::bandnot(sv, W::load(a + v * W::kWords)),
                        W::band(sv, W::load(b + v * W::kWords))));
      }
      break;
    }
    case Op::AndN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::ones();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::band(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v) W::store(out + v * W::kWords, acc[v]);
      break;
    }
    case Op::OrN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::zero();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::bor(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v) W::store(out + v * W::kWords, acc[v]);
      break;
    }
    case Op::NandN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::ones();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::band(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bnot(acc[v]));
      break;
    }
    case Op::NorN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::zero();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::bor(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bnot(acc[v]));
      break;
    }
    case Op::XorN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::zero();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::bxor(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v) W::store(out + v * W::kWords, acc[v]);
      break;
    }
    case Op::XnorN: {
      V acc[kV];
      for (unsigned v = 0; v < kV; ++v) acc[v] = W::zero();
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t* a = in(i);
        for (unsigned v = 0; v < kV; ++v)
          acc[v] = W::bxor(acc[v], W::load(a + v * W::kWords));
      }
      for (unsigned v = 0; v < kV; ++v)
        W::store(out + v * W::kWords, W::bnot(acc[v]));
      break;
    }
  }
  return p + n;
}

// Linear replay of a compact tape with streaming prefetch: while record r
// executes, the next record's tape words, output block and first operand
// block are requested — the tape walk is perfectly sequential, so the
// lookahead address is always one header read away.
template <typename W, unsigned B>
void exec_linear_v(const std::uint32_t* p, const std::uint32_t* end,
                   std::uint64_t* val) {
  while (p != end) {
    const std::uint32_t* nx = p + 2 + (p[0] >> 8);  // next record
    if (nx != end) {
      __builtin_prefetch(nx + 2, 0, 3);
      __builtin_prefetch(val + static_cast<std::size_t>(nx[1]) * B, 1, 3);
      // nx[2] (the first operand slot) only exists when the next record has
      // fanins; Const0/Const1 records end right after the output word.
      if ((nx[0] >> 8) != 0)
        __builtin_prefetch(val + static_cast<std::size_t>(nx[2]) * B, 0, 3);
    }
    p = exec_record_v<W, B>(p, val);
  }
}

// Offset-table replay of an explicit gate list (patched tapes, cone paths),
// prefetching the next listed gate's record while the current one runs.
template <typename W, unsigned B>
void exec_list_v(const std::uint32_t* tape, const std::uint32_t* offset,
                 std::span<const lps::NodeId> gates, std::uint64_t* val) {
  const std::size_t n = gates.size();
  for (std::size_t g = 0; g < n; ++g) {
    if (g + 1 < n) {
      std::uint32_t noff = offset[gates[g + 1]];
      if (noff != kNoRecord) __builtin_prefetch(tape + noff, 0, 3);
    }
    std::uint32_t off = offset[gates[g]];
    if (off != kNoRecord) exec_record_v<W, B>(tape + off, val);
  }
}

// Activity-counter accumulation over one evaluated value block: for each
// listed node, add the set-bit and toggle popcounts of its b populated
// lanes into ones[]/toggles[] and leave the lane's closing word in last[]
// (the cross-block seam carry).  On the first block of a shard the j==0
// toggle is against the lane itself (zero contribution), matching "no
// toggle counted into frame 0".  The loop is branch-free on purpose: the
// Monte Carlo drivers spend more wall clock here than in the tape replay,
// and the ISA builds of this TU decide whether std::popcount is a POPCNT
// instruction or the portable software fold.  Counter sums are exact
// integer adds, so every build produces identical counts — this is a
// speed lever only, like the execution kernels above.
inline void count_columns_impl(const std::uint64_t* val,
                               std::span<const lps::NodeId> nodes,
                               std::size_t B, std::size_t b, bool first,
                               std::uint64_t* ones, std::uint64_t* toggles,
                               std::uint64_t* last) {
  for (lps::NodeId id : nodes) {
    const std::uint64_t* w = val + static_cast<std::size_t>(id) * B;
    std::uint64_t prev = first ? w[0] : last[id];
    std::uint64_t o = 0, t = 0;
    for (std::size_t j = 0; j < b; ++j) {
      const std::uint64_t v = w[j];
      o += static_cast<unsigned>(std::popcount(v));
      t += static_cast<unsigned>(std::popcount(v ^ prev));
      prev = v;
    }
    ones[id] += o;
    toggles[id] += t;
    last[id] = prev;
  }
}

}  // namespace

}  // namespace lps::sim::kern
