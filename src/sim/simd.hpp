// simd.hpp — runtime vector-width selection for the compiled tape.
//
// The tape kernels (sim/kernels_impl.hpp) are compiled three ways: a
// portable scalar build in kernels_scalar.cpp (always present), an AVX2
// build in kernels_avx2.cpp and an AVX-512 build in kernels_avx512.cpp
// (each present only when the toolchain accepts the flags; see
// src/CMakeLists.txt).  This header is the single decision point for which
// build executes: detect_simd() probes the CPU once via
// __builtin_cpu_supports and caches the widest usable width, and
// resolve_simd() clamps a requested width (the LPS_SIM_WIDTH knob, default
// Auto) to what the hardware and the binary actually provide — asking for
// avx512 on an AVX2-only machine degrades to avx2, never to illegal
// instructions.
//
// Width selection never changes results: every kernel build computes
// bit-identical value words (the contract in kernels_impl.hpp), so
// LPS_SIM_WIDTH trades only speed, exactly like LPS_SIM_COMPILED and
// LPS_THREADS.  tests/test_simd.cpp pins this differentially.

#pragma once

#include <cstddef>
#include <string>

namespace lps::sim {

/// Kernel lane width.  Ordered narrow → wide so widths compare with `<`;
/// Auto (the default) resolves to the widest detected width.
enum class SimdWidth : int {
  Scalar = 0,  // one uint64_t per op — portable baseline
  Avx2 = 1,    // 256-bit lanes, 4 words per op
  Avx512 = 2,  // 512-bit lanes, 8 words per op
  Auto = 3,    // resolve at dispatch: widest compiled-in width the CPU has
};

/// Widest width both compiled into this binary and supported by the CPU.
/// Probed once (CPUID via __builtin_cpu_supports) and cached; never Auto.
SimdWidth detect_simd();

/// Clamp a requested width to what can actually run: Auto becomes
/// detect_simd(), and an explicit request wider than detected degrades to
/// detected.  Never returns Auto.
SimdWidth resolve_simd(SimdWidth requested);

/// True when the named width's kernels are compiled into this binary
/// (independent of what the CPU supports — the scalar-forcing CI leg runs
/// on AVX hosts, and AVX binaries run on scalar-only hosts).
bool simd_compiled(SimdWidth w);

/// Knob spelling of a width: "scalar", "avx2", "avx512", "auto".
const char* simd_name(SimdWidth w);

/// 64-bit words per vector op at width `w` (1, 4 or 8; Auto resolves
/// first).  Blocks smaller than this execute through narrower kernels.
std::size_t simd_lane_words(SimdWidth w);

/// One-line description of the currently configured zero-delay engine,
/// e.g. "tape[avx512,b16]" or "interp" — attached to power::Analysis so
/// reports and service responses say which code path produced a number.
std::string engine_desc();

}  // namespace lps::sim
