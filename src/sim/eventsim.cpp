#include "sim/eventsim.hpp"

#include <algorithm>
#include <memory>
#include <map>
#include <random>
#include <stdexcept>

namespace lps::sim {

double TimedStats::sum_total() const {
  double s = 0;
  for (double x : total_toggles) s += x;
  return s;
}

double TimedStats::sum_functional() const {
  double s = 0;
  for (double x : functional_toggles) s += x;
  return s;
}

double TimedStats::glitch_fraction() const {
  double t = sum_total();
  if (t <= 0) return 0.0;
  return (t - sum_functional()) / t;
}

EventSim::EventSim(const Netlist& net)
    : net_(&net), order_(net.topo_order()), dffs_(net.dffs()) {
  reset();
}

void EventSim::clear_stats() {
  stats_.total_toggles.assign(net_->size(), 0.0);
  stats_.functional_toggles.assign(net_->size(), 0.0);
  stats_.vectors = 0;
}

void EventSim::reset() {
  const Netlist& n = *net_;
  value_.assign(n.size(), 0);
  state_.assign(n.size(), 0);
  for (NodeId d : dffs_) state_[d] = n.node(d).init_value ? 1 : 0;
  // Settle the all-zero vector functionally (no event counting).
  std::vector<std::uint64_t> scratch;
  for (NodeId id : order_) {
    const Node& nd = n.node(id);
    switch (nd.type) {
      case GateType::Input:
        value_[id] = 0;
        break;
      case GateType::Dff:
        value_[id] = state_[id];
        break;
      case GateType::Const0:
        value_[id] = 0;
        break;
      case GateType::Const1:
        value_[id] = 1;
        break;
      default: {
        scratch.assign(nd.fanins.size(), 0);
        for (std::size_t j = 0; j < nd.fanins.size(); ++j)
          scratch[j] = value_[nd.fanins[j]] ? ~0ULL : 0ULL;
        value_[id] = (eval_gate(nd.type, scratch) & 1ULL) ? 1 : 0;
      }
    }
  }
  lsv_ = value_;
  settled_ = value_;
  primed_ = true;
  clear_stats();
}

void EventSim::settle(std::vector<std::pair<NodeId, bool>> initial_changes) {
  const Netlist& n = *net_;
  // time -> list of (node, new value).  Transport delay: every scheduled
  // transition is applied (no inertial filtering), so glitches propagate.
  std::map<int, std::vector<std::pair<NodeId, bool>>> wheel;
  wheel[0] = std::move(initial_changes);
  std::vector<std::uint64_t> scratch;
  std::vector<NodeId> touched;

  while (!wheel.empty()) {
    auto it = wheel.begin();
    int t = it->first;
    auto changes = std::move(it->second);
    wheel.erase(it);

    touched.clear();
    for (auto [node, v] : changes) {
      if ((value_[node] != 0) == v) continue;
      value_[node] = v ? 1 : 0;
      stats_.total_toggles[node] += 1.0;
      for (NodeId fo : n.node(node).fanouts) {
        if (n.node(fo).type == GateType::Dff) continue;  // clocked boundary
        touched.push_back(fo);
      }
    }
    // Evaluate each affected gate once per time step.
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (NodeId g : touched) {
      const Node& nd = n.node(g);
      scratch.assign(nd.fanins.size(), 0);
      for (std::size_t j = 0; j < nd.fanins.size(); ++j)
        scratch[j] = value_[nd.fanins[j]] ? ~0ULL : 0ULL;
      bool v = (eval_gate(nd.type, scratch) & 1ULL) != 0;
      if ((lsv_[g] != 0) != v) {
        lsv_[g] = v ? 1 : 0;
        wheel[t + std::max(1, nd.delay)].emplace_back(g, v);
      }
    }
  }
}

void EventSim::apply(std::span<const bool> pi_values) {
  const Netlist& n = *net_;
  if (pi_values.size() != n.inputs().size())
    throw std::invalid_argument("EventSim::apply: PI count mismatch");
  std::vector<std::pair<NodeId, bool>> init;
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    NodeId pi = n.inputs()[i];
    bool v = pi_values[i];
    if ((value_[pi] != 0) != v) {
      init.emplace_back(pi, v);
      lsv_[pi] = v ? 1 : 0;
    }
  }
  // Clock edge: register outputs change to the captured next state
  // (load-enabled registers hold their value when EN was 0).
  for (NodeId d : dffs_) {
    const Node& nd = n.node(d);
    bool next = value_[nd.fanins[0]] != 0;  // D at end of prior cycle
    if (nd.fanins.size() == 2 && value_[nd.fanins[1]] == 0)
      next = value_[d] != 0;  // hold
    if ((value_[d] != 0) != next) {
      init.emplace_back(d, next);
      lsv_[d] = next ? 1 : 0;
    }
    state_[d] = next ? 1 : 0;
  }
  settle(std::move(init));
  // Functional toggles: settled value differs from previous settled value.
  for (NodeId id = 0; id < n.size(); ++id) {
    if (n.is_dead(id)) continue;
    if (value_[id] != settled_[id]) stats_.functional_toggles[id] += 1.0;
  }
  settled_ = value_;
  ++stats_.vectors;
}

TimedStats measure_timed_activity(const Netlist& net, std::size_t n_vectors,
                                  std::uint64_t seed,
                                  std::span<const double> pi_one_prob) {
  EventSim sim(net);
  std::mt19937_64 rng(seed);
  std::vector<char> v(net.inputs().size());
  std::unique_ptr<bool[]> buf(new bool[std::max<std::size_t>(1, v.size())]);
  for (std::size_t k = 0; k < n_vectors; ++k) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      buf[i] = (rng() & 0xFFFF) < static_cast<std::uint64_t>(
                                      (pi_one_prob.empty() ? 0.5
                                                           : pi_one_prob[i]) *
                                      65536.0);
    }
    sim.apply({buf.get(), v.size()});
  }
  return sim.stats();
}

}  // namespace lps::sim
