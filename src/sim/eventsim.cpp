#include "sim/eventsim.hpp"

#include <algorithm>
#include <memory>
#include <random>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/parallel.hpp"

namespace lps::sim {

double TimedStats::sum_total() const {
  double s = 0;
  for (double x : total_toggles) s += x;
  return s;
}

double TimedStats::sum_functional() const {
  double s = 0;
  for (double x : functional_toggles) s += x;
  return s;
}

double TimedStats::glitch_fraction() const {
  double t = sum_total();
  if (t <= 0) return 0.0;
  return (t - sum_functional()) / t;
}

void TimedStats::merge(const TimedStats& other) {
  if (total_toggles.size() < other.total_toggles.size())
    total_toggles.resize(other.total_toggles.size(), 0.0);
  if (functional_toggles.size() < other.functional_toggles.size())
    functional_toggles.resize(other.functional_toggles.size(), 0.0);
  for (std::size_t i = 0; i < other.total_toggles.size(); ++i)
    total_toggles[i] += other.total_toggles[i];
  for (std::size_t i = 0; i < other.functional_toggles.size(); ++i)
    functional_toggles[i] += other.functional_toggles[i];
  vectors += other.vectors;
}

EventSim::EventSim(const Netlist& net)
    : net_(&net), order_(net.topo_order()), dffs_(net.dffs()) {
  // Wheel span: events are scheduled at now + max(1, delay), so
  // max(1, max delay) + 1 buckets distinguish every pending timestamp.
  int maxd = 1;
  for (NodeId id = 0; id < net.size(); ++id)
    if (!net.is_dead(id)) maxd = std::max(maxd, net.node(id).delay);
  wheel_.resize(static_cast<std::size_t>(maxd) + 1);
  reset();
}

void EventSim::clear_stats() {
  stats_.total_toggles.assign(net_->size(), 0.0);
  stats_.functional_toggles.assign(net_->size(), 0.0);
  stats_.vectors = 0;
}

void EventSim::reset() {
  const Netlist& n = *net_;
  value_.assign(n.size(), 0);
  state_.assign(n.size(), 0);
  for (NodeId d : dffs_) state_[d] = n.node(d).init_value ? 1 : 0;
  // Settle the all-zero vector functionally (no event counting).
  std::vector<std::uint64_t> scratch;
  for (NodeId id : order_) {
    const Node& nd = n.node(id);
    switch (nd.type) {
      case GateType::Input:
        value_[id] = 0;
        break;
      case GateType::Dff:
        value_[id] = state_[id];
        break;
      case GateType::Const0:
        value_[id] = 0;
        break;
      case GateType::Const1:
        value_[id] = 1;
        break;
      default: {
        scratch.assign(nd.fanins.size(), 0);
        for (std::size_t j = 0; j < nd.fanins.size(); ++j)
          scratch[j] = value_[nd.fanins[j]] ? ~0ULL : 0ULL;
        value_[id] = (eval_gate(nd.type, scratch) & 1ULL) ? 1 : 0;
      }
    }
  }
  lsv_ = value_;
  settled_ = value_;
  primed_ = true;
  for (auto& b : wheel_) b.clear();
  init_.clear();
  clear_stats();
}

void EventSim::settle() {
  const Netlist& n = *net_;
  // Transport delay: every scheduled transition is applied (no inertial
  // filtering), so glitches propagate.  All pending events lie within
  // max-delay of the current step, so the circular wheel never wraps onto a
  // live bucket; scheduling always targets a bucket != head (delay >= 1).
  const std::size_t W = wheel_.size();
  std::size_t head = 0;
  std::size_t pending = init_.size();
  wheel_[0].swap(init_);

  while (pending > 0) {
    auto& changes = wheel_[head];
    if (!changes.empty()) {
      pending -= changes.size();
      touched_.clear();
      for (auto [node, v] : changes) {
        if ((value_[node] != 0) == v) continue;
        value_[node] = v ? 1 : 0;
        stats_.total_toggles[node] += 1.0;
        for (NodeId fo : n.node(node).fanouts) {
          if (n.node(fo).type == GateType::Dff) continue;  // clocked boundary
          touched_.push_back(fo);
        }
      }
      changes.clear();
      // Evaluate each affected gate once per time step.
      std::sort(touched_.begin(), touched_.end());
      touched_.erase(std::unique(touched_.begin(), touched_.end()),
                     touched_.end());
      for (NodeId g : touched_) {
        const Node& nd = n.node(g);
        scratch_.assign(nd.fanins.size(), 0);
        for (std::size_t j = 0; j < nd.fanins.size(); ++j)
          scratch_[j] = value_[nd.fanins[j]] ? ~0ULL : 0ULL;
        bool v = (eval_gate(nd.type, scratch_) & 1ULL) != 0;
        if ((lsv_[g] != 0) != v) {
          lsv_[g] = v ? 1 : 0;
          auto d = static_cast<std::size_t>(std::max(1, nd.delay));
          wheel_[(head + d) % W].emplace_back(g, v);
          ++pending;
        }
      }
    }
    head = (head + 1) % W;
  }
}

void EventSim::apply(std::span<const bool> pi_values) {
  const Netlist& n = *net_;
  if (pi_values.size() != n.inputs().size())
    throw std::invalid_argument("EventSim::apply: PI count mismatch");
  init_.clear();
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    NodeId pi = n.inputs()[i];
    bool v = pi_values[i];
    if ((value_[pi] != 0) != v) {
      init_.emplace_back(pi, v);
      lsv_[pi] = v ? 1 : 0;
    }
  }
  // Clock edge: register outputs change to the captured next state
  // (load-enabled registers hold their value when EN was 0).
  for (NodeId d : dffs_) {
    const Node& nd = n.node(d);
    bool next = value_[nd.fanins[0]] != 0;  // D at end of prior cycle
    if (nd.fanins.size() == 2 && value_[nd.fanins[1]] == 0)
      next = value_[d] != 0;  // hold
    if ((value_[d] != 0) != next) {
      init_.emplace_back(d, next);
      lsv_[d] = next ? 1 : 0;
    }
    state_[d] = next ? 1 : 0;
  }
  settle();
  // Functional toggles: settled value differs from previous settled value.
  for (NodeId id = 0; id < n.size(); ++id) {
    if (n.is_dead(id)) continue;
    if (value_[id] != settled_[id]) stats_.functional_toggles[id] += 1.0;
  }
  settled_ = value_;
  ++stats_.vectors;
}

namespace {

// Vectors between cancellation polls inside one shard: bounds cancellation
// latency for single-shard (sequential) streams without measurable cost.
constexpr std::size_t kCancelBatchVectors = 32;

void simulate_timed_shard(EventSim& sim, std::size_t n_pi,
                          std::size_t n_vectors, std::uint64_t seed,
                          std::span<const double> pi_one_prob, bool* buf,
                          const core::CancelToken* cancel) {
  std::mt19937_64 rng(seed);
  for (std::size_t k = 0; k < n_vectors; ++k) {
    if (k % kCancelBatchVectors == 0) core::poll_cancel(cancel);
    for (std::size_t i = 0; i < n_pi; ++i) {
      buf[i] = (rng() & 0xFFFF) < static_cast<std::uint64_t>(
                                      (pi_one_prob.empty() ? 0.5
                                                           : pi_one_prob[i]) *
                                      65536.0);
    }
    sim.apply({buf, n_pi});
  }
}

}  // namespace

TimedStats measure_timed_activity(const Netlist& net, std::size_t n_vectors,
                                  std::uint64_t seed,
                                  std::span<const double> pi_one_prob,
                                  const core::CancelToken* cancel) {
  // Sequential nets carry register state vector-to-vector: one serial shard
  // with the legacy stream.  Combinational nets shard; each shard starts
  // from the reset (all-zero) settled state, so the decomposition — a
  // function of n_vectors alone — fixes the counts at any thread count.
  //
  // Dispatch grain: at most one pool index per execution lane.  Each chunk
  // runs a contiguous shard range serially on ONE EventSim instance
  // (reset() restores the clean settled state between shards, so the
  // timing wheel and value arrays are allocated once per worker, not once
  // per shard).  Toggle counters are integer-valued doubles, whose sums
  // are exact, so the chunk-order merge below equals the shard-order merge
  // at any thread count.
  auto plan = core::plan_shards(net.dffs().empty() ? n_vectors : 0, 64);
  const std::size_t n_pi = net.inputs().size();
  TimedStats st;
  if (plan.shards == 1) {
    EventSim sim(net);
    std::unique_ptr<bool[]> buf(new bool[std::max<std::size_t>(1, n_pi)]);
    simulate_timed_shard(sim, n_pi, n_vectors, seed, pi_one_prob, buf.get(),
                         cancel);
    st = sim.stats();
  } else {
    // Two chunks per lane (core::plan_chunks) so early-finishing lanes
    // steal work; the EventSim instance and its wheel are constructed
    // inside the chunk, so their pages first-touch on the owning worker.
    const std::size_t n_chunks = core::plan_chunks(plan.shards);
    std::vector<TimedStats> parts(n_chunks);
    core::parallel_for(n_chunks, [&](std::size_t c) {
      const std::size_t s_begin = c * plan.shards / n_chunks;
      const std::size_t s_end = (c + 1) * plan.shards / n_chunks;
      EventSim sim(net);
      std::unique_ptr<bool[]> buf(new bool[std::max<std::size_t>(1, n_pi)]);
      TimedStats& acc = parts[c];
      acc.total_toggles.assign(net.size(), 0.0);
      acc.functional_toggles.assign(net.size(), 0.0);
      for (std::size_t s = s_begin; s < s_end; ++s) {
        core::poll_cancel(cancel);
        simulate_timed_shard(sim, n_pi, plan.count(s),
                             core::shard_seed(seed, s), pi_one_prob,
                             buf.get(), cancel);
        acc.merge(sim.stats());
        sim.reset();
      }
    });
    st.total_toggles.assign(net.size(), 0.0);
    st.functional_toggles.assign(net.size(), 0.0);
    for (const auto& p : parts) st.merge(p);
  }
  core::metrics::count("sim.event.runs");
  core::metrics::count("sim.event.vectors", static_cast<double>(st.vectors));
  core::metrics::count("sim.event.transitions", st.sum_total());
  return st;
}

}  // namespace lps::sim
