// kernels.hpp — exported entry points of the ISA-specific kernel builds.
//
// Each translation unit (kernels_scalar.cpp, kernels_avx2.cpp,
// kernels_avx512.cpp) instantiates the templated kernels from
// kernels_impl.hpp with its own word-vector traits and exports exactly
// three functions: a linear tape replay, an offset-table gate-list replay,
// and the activity-counter accumulation over an evaluated value block.
// CompiledSim (sim/compiled.cpp) picks an entry point per call from
// resolve_simd() — these functions themselves do no CPU probing, so they
// must only be invoked when the matching ISA was detected (the AVX
// variants execute wide instructions unconditionally).
//
// Block handling: every entry accepts any supported block factor
// {1,2,4,8,16}.  Blocks narrower than the build's vector width run through
// the narrowest traits that fit, *compiled inside the same TU* (an AVX2
// TU's scalar instantiation may use VEX encodings — fine, the TU is only
// entered when AVX2 is available).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "netlist/netlist.hpp"

namespace lps::sim::kern {

void exec_linear_scalar(const std::uint32_t* p, const std::uint32_t* end,
                        std::uint64_t* val, std::size_t block);
void exec_list_scalar(const std::uint32_t* tape, const std::uint32_t* offset,
                      std::span<const NodeId> gates, std::uint64_t* val,
                      std::size_t block);
void count_columns_scalar(const std::uint64_t* val,
                          std::span<const NodeId> nodes, std::size_t block,
                          std::size_t b, bool first, std::uint64_t* ones,
                          std::uint64_t* toggles, std::uint64_t* last);

#if defined(LPS_HAVE_AVX2_KERNELS)
void exec_linear_avx2(const std::uint32_t* p, const std::uint32_t* end,
                      std::uint64_t* val, std::size_t block);
void exec_list_avx2(const std::uint32_t* tape, const std::uint32_t* offset,
                    std::span<const NodeId> gates, std::uint64_t* val,
                    std::size_t block);
void count_columns_avx2(const std::uint64_t* val,
                        std::span<const NodeId> nodes, std::size_t block,
                        std::size_t b, bool first, std::uint64_t* ones,
                        std::uint64_t* toggles, std::uint64_t* last);
#endif

#if defined(LPS_HAVE_AVX512_KERNELS)
void exec_linear_avx512(const std::uint32_t* p, const std::uint32_t* end,
                        std::uint64_t* val, std::size_t block);
void exec_list_avx512(const std::uint32_t* tape, const std::uint32_t* offset,
                      std::span<const NodeId> gates, std::uint64_t* val,
                      std::size_t block);
void count_columns_avx512(const std::uint64_t* val,
                          std::span<const NodeId> nodes, std::size_t block,
                          std::size_t b, bool first, std::uint64_t* ones,
                          std::uint64_t* toggles, std::uint64_t* last);
#endif

}  // namespace lps::sim::kern
