// logicsim.hpp — 64-way bit-parallel zero-delay logic simulation.
//
// Used for (a) functional equivalence checking of every optimization pass,
// (b) exact zero-delay switching-activity measurement (§I Eqn. 1 factor N),
// and (c) signal/transition probability measurement under arbitrary input
// statistics.  Each std::uint64_t word carries 64 independent patterns.
//
// Monte Carlo drivers shard their frame stream across the shared thread
// pool (core/parallel.hpp).  The decomposition and per-shard seeds depend
// only on the workload, and per-shard counts merge associatively in shard
// order, so results are bit-identical at any thread count.  Sequential
// netlists carry register state across frames and therefore always run as
// one serial shard (preserving the single-trajectory semantics).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "netlist/netlist.hpp"

namespace lps::sim {

/// One simulation frame: value word per node (64 parallel patterns).
using Frame = std::vector<std::uint64_t>;

/// Precomputed evaluation schedule for one cone of the network: the cone's
/// logic gates in topological order plus its registers.  Built once per
/// dirty set by LogicSim::cone_schedule() and replayed over every cached
/// frame by eval_cone_into() — the inner loop of incremental power
/// re-estimation (power/incremental.hpp).
struct ConeSchedule {
  std::vector<NodeId> gates;  // live non-source, non-Dff cone nodes, topo order
  std::vector<NodeId> dffs;   // live cone registers (state stepped by caller)
  /// Live cone nodes whose per-frame values must be (re)computed: gates +
  /// dffs.  Primary inputs are excluded — their value stream is fixed by
  /// the seed and input position, never by netlist edits.
  std::size_t resim_nodes() const { return gates.size() + dffs.size(); }
};

/// Zero-delay combinational evaluator bound to one netlist.
class LogicSim {
 public:
  explicit LogicSim(const Netlist& net);

  const Netlist& net() const { return *net_; }

  /// Evaluate the full network for one frame of PI values; `pi_words[i]`
  /// corresponds to net.inputs()[i].  `dff_words` supplies register outputs
  /// (empty = use reset values).  Returns a per-node value frame.
  Frame eval(std::span<const std::uint64_t> pi_words,
             std::span<const std::uint64_t> dff_words = {}) const;

  /// Allocation-free variant for hot loops: evaluates into `f`, reusing its
  /// capacity across frames.
  void eval_into(Frame& f, std::span<const std::uint64_t> pi_words,
                 std::span<const std::uint64_t> dff_words = {}) const;

  /// Restrict this netlist's topological order to the nodes set in `mask`
  /// (sized net.size(); dead nodes and primary inputs are dropped).
  ConeSchedule cone_schedule(const std::vector<bool>& mask) const;

  /// Cone-restricted re-evaluation: recompute exactly `sched.gates` (in
  /// order) in place in `f`, reading every fanin from `f` itself.  `f` must
  /// be a full-network frame whose outside-the-cone entries already hold
  /// valid values — the caller supplies PI and register words (including
  /// the cone's registers) before the call.  Evaluating a cone inside a
  /// frame whose complement is up to date yields bit-identical words to a
  /// full eval_into() pass, which is the splice guarantee incremental
  /// power analysis rests on.
  void eval_cone_into(Frame& f, const ConeSchedule& sched) const;

  /// Values at the primary outputs extracted from a frame.
  std::vector<std::uint64_t> outputs_of(const Frame& f) const;
  /// Next-state values (Dff D inputs) extracted from a frame.
  std::vector<std::uint64_t> next_state_of(const Frame& f) const;
  /// Allocation-free variant: writes next-state words into `state` (which
  /// must already hold the current state — load-enabled Dffs read it).
  void next_state_into(const Frame& f,
                       std::vector<std::uint64_t>& state) const;

  const std::vector<NodeId>& order() const { return order_; }

 private:
  const Netlist* net_;
  std::vector<NodeId> order_;
  std::vector<NodeId> dff_list_;
};

/// Statistics accumulated over a (possibly multi-frame) simulation run.
struct ActivityStats {
  std::vector<double> signal_prob;      // P(node == 1)
  std::vector<double> transition_prob;  // E[toggles per cycle], zero-delay
  std::size_t patterns = 0;
};

/// Raw simulation record behind one measure_activity() run, captured so an
/// incremental re-estimator can later re-derive any node's value stream
/// without re-running the untouched part of the network.  Frames are
/// concatenated in shard order (the merge order of the determinism
/// contract); `shard_start[fr]` marks stream seams, across which no toggle
/// is counted.  `ones`/`toggles` are the exact per-node integer counters
/// the ActivityStats doubles are derived from.
struct ActivityTrace {
  std::vector<Frame> frames;     // [frame][node] value words, shard order
  std::vector<char> shard_start;  // per frame: first frame of its shard?
  std::vector<std::uint64_t> ones;     // per node, summed over frames
  std::vector<std::uint64_t> toggles;  // per node, intra-shard seams only
  std::size_t patterns = 0;       // frames * 64
  std::size_t seam_patterns = 0;  // toggle-counted boundaries * 64
};

/// Derive the probability view from a trace's exact counters — the same
/// arithmetic measure_activity() applies, exposed so spliced counters
/// reproduce bit-identical doubles.
ActivityStats stats_from_counts(std::span<const std::uint64_t> ones,
                                std::span<const std::uint64_t> toggles,
                                std::size_t patterns,
                                std::size_t seam_patterns);

/// Run `n_frames` frames of random-vector simulation and measure zero-delay
/// signal and transition probabilities per node.  `pi_one_prob` optionally
/// sets a per-input probability of 1 (default 0.5).  For sequential nets the
/// register state is carried across consecutive patterns within a word
/// stream (one symbolic stream of length 64*n_frames).  Combinational nets
/// shard the stream across the thread pool; results are deterministic in
/// (n_frames, seed) and independent of the thread count.  When `capture` is
/// non-null the full per-frame value matrix and exact counters are recorded
/// into it (one extra frame copy per simulated frame; the statistics are
/// unchanged).  A non-null `cancel` token is polled at shard boundaries and
/// every frame batch within a shard; when it fires the run throws
/// core::CancelledError and all partial counts are discarded — cancellation
/// never yields a truncated (and therefore wrong) statistic.
ActivityStats measure_activity(const Netlist& net, std::size_t n_frames,
                               std::uint64_t seed,
                               std::span<const double> pi_one_prob = {},
                               ActivityTrace* capture = nullptr,
                               const core::CancelToken* cancel = nullptr);

/// Random-vector combinational equivalence check: simulates both networks on
/// the same input stream (inputs matched by position) and compares outputs
/// (matched by position).  Returns true if no mismatch over n_frames*64
/// patterns.  A miscompare is definitive; agreement is probabilistic.
bool equivalent_random(const Netlist& a, const Netlist& b,
                       std::size_t n_frames, std::uint64_t seed);

/// Deterministic functional fingerprint: the digest of a netlist's primary
/// output stream under `n_frames` frames of seeded random stimulus (register
/// state carried exactly as in equivalent_random).  Two netlists with equal
/// traces for the same (n_frames, seed) are equivalent on that stream, up to
/// a ~2^-64 digest collision — this lets the pass manager verify a rewrite
/// against the *pre-pass* circuit without keeping a deep copy of it alive.
struct SimTrace {
  std::size_t n_inputs = 0;
  std::size_t n_outputs = 0;
  std::size_t n_dffs = 0;
  std::size_t frames = 0;
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;
  bool operator==(const SimTrace&) const = default;
};

SimTrace functional_trace(const Netlist& net, std::size_t n_frames,
                          std::uint64_t seed);

}  // namespace lps::sim
