// logicsim.hpp — 64-way bit-parallel zero-delay logic simulation.
//
// Used for (a) functional equivalence checking of every optimization pass,
// (b) exact zero-delay switching-activity measurement (§I Eqn. 1 factor N),
// and (c) signal/transition probability measurement under arbitrary input
// statistics.  Each std::uint64_t word carries 64 independent patterns.
//
// Monte Carlo drivers shard their frame stream across the shared thread
// pool (core/parallel.hpp).  The decomposition and per-shard seeds depend
// only on the workload, and per-shard counts merge associatively in shard
// order, so results are bit-identical at any thread count.  Sequential
// netlists carry register state across frames and therefore always run as
// one serial shard (preserving the single-trajectory semantics).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace lps::sim {

/// One simulation frame: value word per node (64 parallel patterns).
using Frame = std::vector<std::uint64_t>;

/// Zero-delay combinational evaluator bound to one netlist.
class LogicSim {
 public:
  explicit LogicSim(const Netlist& net);

  const Netlist& net() const { return *net_; }

  /// Evaluate the full network for one frame of PI values; `pi_words[i]`
  /// corresponds to net.inputs()[i].  `dff_words` supplies register outputs
  /// (empty = use reset values).  Returns a per-node value frame.
  Frame eval(std::span<const std::uint64_t> pi_words,
             std::span<const std::uint64_t> dff_words = {}) const;

  /// Allocation-free variant for hot loops: evaluates into `f`, reusing its
  /// capacity across frames.
  void eval_into(Frame& f, std::span<const std::uint64_t> pi_words,
                 std::span<const std::uint64_t> dff_words = {}) const;

  /// Values at the primary outputs extracted from a frame.
  std::vector<std::uint64_t> outputs_of(const Frame& f) const;
  /// Next-state values (Dff D inputs) extracted from a frame.
  std::vector<std::uint64_t> next_state_of(const Frame& f) const;
  /// Allocation-free variant: writes next-state words into `state` (which
  /// must already hold the current state — load-enabled Dffs read it).
  void next_state_into(const Frame& f,
                       std::vector<std::uint64_t>& state) const;

  const std::vector<NodeId>& order() const { return order_; }

 private:
  const Netlist* net_;
  std::vector<NodeId> order_;
  std::vector<NodeId> dff_list_;
};

/// Statistics accumulated over a (possibly multi-frame) simulation run.
struct ActivityStats {
  std::vector<double> signal_prob;      // P(node == 1)
  std::vector<double> transition_prob;  // E[toggles per cycle], zero-delay
  std::size_t patterns = 0;
};

/// Run `n_frames` frames of random-vector simulation and measure zero-delay
/// signal and transition probabilities per node.  `pi_one_prob` optionally
/// sets a per-input probability of 1 (default 0.5).  For sequential nets the
/// register state is carried across consecutive patterns within a word
/// stream (one symbolic stream of length 64*n_frames).  Combinational nets
/// shard the stream across the thread pool; results are deterministic in
/// (n_frames, seed) and independent of the thread count.
ActivityStats measure_activity(const Netlist& net, std::size_t n_frames,
                               std::uint64_t seed,
                               std::span<const double> pi_one_prob = {});

/// Random-vector combinational equivalence check: simulates both networks on
/// the same input stream (inputs matched by position) and compares outputs
/// (matched by position).  Returns true if no mismatch over n_frames*64
/// patterns.  A miscompare is definitive; agreement is probabilistic.
bool equivalent_random(const Netlist& a, const Netlist& b,
                       std::size_t n_frames, std::uint64_t seed);

/// Deterministic functional fingerprint: the digest of a netlist's primary
/// output stream under `n_frames` frames of seeded random stimulus (register
/// state carried exactly as in equivalent_random).  Two netlists with equal
/// traces for the same (n_frames, seed) are equivalent on that stream, up to
/// a ~2^-64 digest collision — this lets the pass manager verify a rewrite
/// against the *pre-pass* circuit without keeping a deep copy of it alive.
struct SimTrace {
  std::size_t n_inputs = 0;
  std::size_t n_outputs = 0;
  std::size_t n_dffs = 0;
  std::size_t frames = 0;
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;
  bool operator==(const SimTrace&) const = default;
};

SimTrace functional_trace(const Netlist& net, std::size_t n_frames,
                          std::uint64_t seed);

}  // namespace lps::sim
