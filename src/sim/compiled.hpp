// compiled.hpp — flat-tape compiled zero-delay simulation.
//
// LogicSim evaluates one gate at a time through Node::fanins (a heap
// vector per gate) and eval_gate (a second switch over a span) — two
// indirections and two dispatches per gate per frame.  CompiledSim lowers
// the topological order once into one contiguous instruction tape: packed
// {opcode, n_fanins, output slot, operand slots} records in a flat
// std::uint32_t array, with specialized opcodes for the dominant one- and
// two-input gates (NOT/BUF/AND2/OR2/NAND2/NOR2/XOR2/XNOR2/MUX) and a
// generic n-ary fallback that folds wide gates operand-by-operand without
// any scratch buffer.  The Monte Carlo drivers then replay the tape with
// multi-word frame blocking: B 64-bit words (64*B patterns) are evaluated
// per tape step, so each instruction decode is amortized over up to 1024
// vectors and the inner per-record loops autovectorize.
//
// Bit-equality contract: for identical input words a tape replay produces
// exactly the words eval_gate computes — every opcode is the same bitwise
// expression, folded in the same fanin order — so CompiledSim frames are
// bit-identical to LogicSim frames.  tests/test_compiled.cpp enforces this
// differentially across the benchmark suite; the measure_activity driver
// (sim/logicsim.cpp) selects the engine via SimOptions::use_compiled with
// either choice producing the same counters.
//
// Mutation support: optimization loops edit a handful of nodes per
// candidate move.  update() patches the tape from the same
// Netlist::touched_nodes() report that feeds incremental power analysis —
// re-emitting only the records of nodes whose value-relevant state changed
// (O(edit size), appended at the tape's end with a per-node offset table) —
// instead of recompiling the whole netlist.  Patched tapes are no longer a
// single linear program (records are found through the offset table), so
// the cone paths (cone_schedule / exec_gates) take over; a garbage bound
// triggers a full rebuild when patches accumulate.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logicsim.hpp"
#include "sim/simd.hpp"

namespace lps::sim {

/// Process-wide simulation engine knobs, sampled once from the environment
/// (LPS_SIM_COMPILED=0 disables the tape, LPS_SIM_BLOCK=1|2|4|8|16 sets the
/// frame-blocking factor, LPS_SIM_WIDTH=scalar|avx2|avx512|auto picks the
/// kernel lane width) on the first sim_options() call — the same caching
/// contract as LPS_THREADS (core/parallel.hpp).  Tests and benches override
/// via ScopedSimOptions; every engine/width/block choice produces
/// bit-identical results, so the knobs trade only speed.
struct SimOptions {
  bool use_compiled = true;  // route Monte Carlo drivers through CompiledSim
  std::size_t block = 16;    // 64-bit words evaluated per tape step (1..16)
  SimdWidth width = SimdWidth::Auto;  // kernel lane width (see sim/simd.hpp)
};

/// The mutable global options record (not thread-safe to flip while a
/// simulation is running; flip between runs only).
SimOptions& sim_options();

/// Largest supported blocking factor <= `b` (supported: 1, 2, 4, 8, 16).
std::size_t normalize_block(std::size_t b);

/// Activity-counter accumulation over an evaluated value block, routed to
/// the same ISA kernel build resolve_simd() picks for the tape replay: for
/// each listed node add the set-bit and toggle popcounts of its first `b`
/// lanes into ones[]/toggles[] and leave the closing lane word in last[]
/// (the cross-block seam carry).  `first` marks the first block of a
/// stream: the lane-0 toggle is then counted against itself (zero), i.e.
/// no toggle lands in frame 0.  Counter sums are exact integer adds, so
/// every kernel build produces identical counts — the dispatch trades only
/// speed (the wide builds use the POPCNT instruction, the scalar fallback
/// stays baseline-portable).
void count_columns(const std::uint64_t* val, std::span<const NodeId> nodes,
                   std::size_t block, std::size_t b, bool first,
                   std::uint64_t* ones, std::uint64_t* toggles,
                   std::uint64_t* last);

/// RAII override of sim_options() for tests and differential benches.
class ScopedSimOptions {
 public:
  explicit ScopedSimOptions(SimOptions o) : prev_(sim_options()) {
    sim_options() = o;
  }
  ~ScopedSimOptions() { sim_options() = prev_; }
  ScopedSimOptions(const ScopedSimOptions&) = delete;
  ScopedSimOptions& operator=(const ScopedSimOptions&) = delete;

 private:
  SimOptions prev_;
};

/// Zero-delay evaluator over a compiled instruction tape.
///
/// Value layout: node id `n`'s words live at val[n * block + 0 .. block-1];
/// with block == 1 a plain Frame (std::vector<std::uint64_t> indexed by
/// node id) is a valid value array.  Source slots (primary inputs, register
/// outputs) are written by the caller before exec; dead-node slots are
/// never written and must be zeroed once by the caller (matching
/// LogicSim's f.assign contract).
class CompiledSim {
 public:
  explicit CompiledSim(const Netlist& net);

  const Netlist& net() const { return *net_; }

  /// Recompile the whole tape from the netlist's current topological
  /// order.  O(netlist).  Restores compact (linear-replay) form.
  void rebuild();

  /// Patch the tape after a mutation, from the undo journal's touched-node
  /// report (captured while the epoch was open): re-emits records for
  /// exactly touched.value_roots — nodes whose type/fanins/liveness
  /// changed, plus nodes created this epoch — in O(edit size).  A
  /// wholesale report (touched.all) or an excessive garbage ratio falls
  /// back to rebuild().  After a patch the tape is no longer compact:
  /// use cone_schedule()/exec_gates() (eval_into still works, at
  /// schedule-building cost).
  void update(const Netlist::TouchedNodes& touched);

  /// Rollback support: drop records of nodes >= n_nodes (the netlist
  /// shrank back after Netlist::rollback_undo) and re-emit `patched`
  /// from the restored netlist.  O(edit size).
  void revert_to(std::size_t n_nodes, std::span<const NodeId> patched);

  /// True when the tape is one linear topo-order program (no patches
  /// since the last rebuild): exec_all and the blocked Monte Carlo
  /// drivers require this.
  bool compact() const { return compact_; }

  /// Instruction records currently reachable through the offset table.
  std::size_t records() const { return records_; }
  /// Total tape words including patch garbage (rebuild bound diagnostic).
  std::size_t tape_words() const { return tape_.size(); }

  /// Gate/constant execution order of the compact tape (topo order minus
  /// sources and registers).
  const std::vector<NodeId>& order() const { return order_; }
  /// Live registers, in Netlist::dffs() order.
  const std::vector<NodeId>& dffs() const { return dff_list_; }
  /// All live node ids, ascending — the counting set of the activity
  /// drivers (dead slots stay zero and are skipped).
  const std::vector<NodeId>& live() const { return live_; }

  /// Replay the whole tape over a block of `block` words per node.
  /// Requires compact(); the caller has set PI and register slots.
  void exec_all(std::uint64_t* val, std::size_t block) const;

  /// Execute exactly the records of `gates` (in the given order) — the
  /// cone-restricted path of incremental re-estimation.  Valid on patched
  /// tapes; reads records through the offset table.
  void exec_gates(std::uint64_t* val, std::size_t block,
                  std::span<const NodeId> gates) const;

  /// Topological schedule of the masked subgraph, built by a depth-first
  /// walk restricted to the mask — O(cone + its edges), never O(netlist)
  /// like a full topo sort, and correct on patched tapes whose global
  /// order() is stale (new nodes are scheduled by the DFS).  Gate order
  /// may differ from LogicSim::cone_schedule's (both are valid topological
  /// orders, so evaluated words are bit-identical).
  ConeSchedule cone_schedule(const std::vector<bool>& mask) const;

  /// Drop-in equivalent of LogicSim::eval_into (block == 1): full-network
  /// evaluation producing a bit-identical Frame.  On patched tapes this
  /// builds a full-network schedule per call (O(netlist)) — the hot paths
  /// use exec_all / exec_gates instead.
  void eval_into(Frame& f, std::span<const std::uint64_t> pi_words,
                 std::span<const std::uint64_t> dff_words = {}) const;

 private:
  static constexpr std::uint32_t kNoRecord = 0xFFFFFFFFu;

  /// (Re-)emit node `id`'s record at the tape's end, or clear its offset
  /// when the node no longer evaluates (dead / source / register).
  void emit(NodeId id);

  const Netlist* net_;
  std::vector<std::uint32_t> tape_;
  std::vector<std::uint32_t> offset_;  // per node id; kNoRecord = none
  std::vector<NodeId> order_;          // compact execution order (gates)
  std::vector<NodeId> dff_list_;
  std::vector<NodeId> live_;
  std::size_t records_ = 0;
  std::size_t base_words_ = 0;  // tape size at last rebuild (garbage bound)
  bool compact_ = true;
};

}  // namespace lps::sim
