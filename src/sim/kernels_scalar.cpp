// kernels_scalar.cpp — portable kernel build.  Compiled with the project's
// baseline flags only (no -m options), so this TU is safe on any x86-64 or
// non-x86 host; it is the fallback resolve_simd() always has available.

#include "sim/kernels.hpp"

#include <stdexcept>

#include "sim/kernels_impl.hpp"

namespace lps::sim::kern {

void exec_linear_scalar(const std::uint32_t* p, const std::uint32_t* end,
                        std::uint64_t* val, std::size_t block) {
  switch (block) {
    case 1: exec_linear_v<ScalarOps, 1>(p, end, val); break;
    case 2: exec_linear_v<ScalarOps, 2>(p, end, val); break;
    case 4: exec_linear_v<ScalarOps, 4>(p, end, val); break;
    case 8: exec_linear_v<ScalarOps, 8>(p, end, val); break;
    case 16: exec_linear_v<ScalarOps, 16>(p, end, val); break;
    default:
      throw std::invalid_argument("exec_linear_scalar: unsupported block");
  }
}

void exec_list_scalar(const std::uint32_t* tape, const std::uint32_t* offset,
                      std::span<const NodeId> gates, std::uint64_t* val,
                      std::size_t block) {
  switch (block) {
    case 1: exec_list_v<ScalarOps, 1>(tape, offset, gates, val); break;
    case 2: exec_list_v<ScalarOps, 2>(tape, offset, gates, val); break;
    case 4: exec_list_v<ScalarOps, 4>(tape, offset, gates, val); break;
    case 8: exec_list_v<ScalarOps, 8>(tape, offset, gates, val); break;
    case 16: exec_list_v<ScalarOps, 16>(tape, offset, gates, val); break;
    default:
      throw std::invalid_argument("exec_list_scalar: unsupported block");
  }
}

void count_columns_scalar(const std::uint64_t* val,
                          std::span<const NodeId> nodes, std::size_t block,
                          std::size_t b, bool first, std::uint64_t* ones,
                          std::uint64_t* toggles, std::uint64_t* last) {
  count_columns_impl(val, nodes, block, b, first, ones, toggles, last);
}

}  // namespace lps::sim::kern
