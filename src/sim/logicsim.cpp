#include "sim/logicsim.hpp"

#include <bit>
#include <optional>
#include <random>
#include <stdexcept>

#include "core/aligned.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "sim/compiled.hpp"

namespace lps::sim {

LogicSim::LogicSim(const Netlist& net)
    : net_(&net), order_(net.topo_order()), dff_list_(net.dffs()) {}

namespace {

// Shared per-gate word evaluation of eval_into and eval_cone_into: both
// must produce bit-identical words for the incremental splice to hold.
inline void eval_gate_word(const Node& nd, NodeId id, Frame& f) {
  switch (nd.type) {
    case GateType::Input:
    case GateType::Dff:
      break;
    case GateType::Const0:
      f[id] = 0;
      break;
    case GateType::Const1:
      f[id] = ~0ULL;
      break;
    default: {
      std::uint64_t fin[64];
      std::size_t k = nd.fanins.size();
      if (k <= 64) {
        for (std::size_t j = 0; j < k; ++j) fin[j] = f[nd.fanins[j]];
        f[id] = eval_gate(nd.type, {fin, k});
      } else {
        // One LogicSim instance is shared read-only across shard threads,
        // so the wide-gate scratch cannot live in the object; thread_local
        // reuses the allocation across gates and frames without racing.
        static thread_local std::vector<std::uint64_t> big;
        big.resize(k);
        for (std::size_t j = 0; j < k; ++j) big[j] = f[nd.fanins[j]];
        f[id] = eval_gate(nd.type, big);
      }
    }
  }
}

}  // namespace

void LogicSim::eval_into(Frame& f, std::span<const std::uint64_t> pi_words,
                         std::span<const std::uint64_t> dff_words) const {
  const Netlist& n = *net_;
  if (pi_words.size() != n.inputs().size())
    throw std::invalid_argument("LogicSim::eval: PI word count mismatch");
  f.assign(n.size(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    f[n.inputs()[i]] = pi_words[i];
  for (std::size_t i = 0; i < dff_list_.size(); ++i) {
    const Node& d = n.node(dff_list_[i]);
    f[dff_list_[i]] = dff_words.empty()
                          ? (d.init_value ? ~0ULL : 0ULL)
                          : dff_words[i];
  }
  for (NodeId id : order_) eval_gate_word(n.node(id), id, f);
}

ConeSchedule LogicSim::cone_schedule(const std::vector<bool>& mask) const {
  if (mask.size() != net_->size())
    throw std::invalid_argument("LogicSim::cone_schedule: mask size mismatch");
  ConeSchedule s;
  for (NodeId id : order_) {
    if (!mask[id]) continue;
    const Node& nd = net_->node(id);
    if (nd.type == GateType::Input) continue;
    if (nd.type == GateType::Dff)
      s.dffs.push_back(id);
    else
      s.gates.push_back(id);
  }
  return s;
}

void LogicSim::eval_cone_into(Frame& f, const ConeSchedule& sched) const {
  const Netlist& n = *net_;
  for (NodeId id : sched.gates) eval_gate_word(n.node(id), id, f);
}

Frame LogicSim::eval(std::span<const std::uint64_t> pi_words,
                     std::span<const std::uint64_t> dff_words) const {
  Frame f;
  eval_into(f, pi_words, dff_words);
  return f;
}

std::vector<std::uint64_t> LogicSim::outputs_of(const Frame& f) const {
  std::vector<std::uint64_t> r;
  r.reserve(net_->outputs().size());
  for (NodeId o : net_->outputs()) r.push_back(f[o]);
  return r;
}

void LogicSim::next_state_into(const Frame& f,
                               std::vector<std::uint64_t>& state) const {
  // `state` holds the current Q values, which load-enabled Dffs recirculate
  // on EN = 0; they equal f[d], so the update is safe in place.
  state.resize(dff_list_.size());
  for (std::size_t i = 0; i < dff_list_.size(); ++i) {
    NodeId d = dff_list_[i];
    const Node& nd = net_->node(d);
    std::uint64_t next = f[nd.fanins[0]];
    if (nd.fanins.size() == 2) {
      std::uint64_t en = f[nd.fanins[1]];
      next = (en & next) | (~en & f[d]);  // hold on EN = 0
    }
    state[i] = next;
  }
}

std::vector<std::uint64_t> LogicSim::next_state_of(const Frame& f) const {
  std::vector<std::uint64_t> r(dff_list_.size());
  next_state_into(f, r);
  return r;
}

namespace {

// Word whose bits are 1 with probability p (16-bit resolution).
std::uint64_t biased_word(std::mt19937_64& rng, double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  std::uint64_t w = 0;
  auto thr = static_cast<std::uint32_t>(p * 65536.0);
  for (int b = 0; b < 64; ++b)
    if ((rng() & 0xFFFF) < thr) w |= 1ULL << b;
  return w;
}

// Per-chunk accumulator: exact integer counts merge associatively, so a
// chunk may fold several consecutive shards into one accumulator and the
// chunk-order merge still equals the shard-order merge bit for bit.
// alignas keeps adjacent chunks' hot scalar fields off a shared cache line.
struct alignas(64) ActivityAccum {
  std::vector<std::uint64_t> ones;
  std::vector<std::uint64_t> toggles;
  std::size_t frames = 0;
  std::size_t seams = 0;  // consecutive-frame boundaries counted
};

// Scratch buffers reused across every shard of one chunk (one allocation
// per worker per run instead of per shard).  The compiled value block is
// cache-line aligned (core/aligned.hpp) so the SIMD kernels' vector
// accesses of any node block never straddle a line.
struct ActivityScratch {
  // interpreted engine
  Frame f, prev;
  std::vector<std::uint64_t> pi_words;
  std::vector<std::uint64_t> state;
  // compiled engine
  core::AlignedWords val;   // node-major value block, n * B words
  core::AlignedWords last;  // previous frame's word per node
};

// Frames between cancellation polls inside one shard: bounds cancellation
// latency for single-shard (sequential) streams without measurable cost.
constexpr std::size_t kCancelBatchFrames = 32;

void simulate_activity_shard(const Netlist& net, const LogicSim& sim,
                             std::span<const NodeId> dffs,
                             std::size_t n_frames, std::uint64_t seed,
                             std::span<const double> pi_one_prob,
                             Frame* capture_frames, ActivityAccum& a,
                             ActivityScratch& sc,
                             const core::CancelToken* cancel) {
  const auto& pis = net.inputs();
  a.frames += n_frames;
  a.seams += n_frames > 1 ? n_frames - 1 : 0;

  std::mt19937_64 rng(seed);
  sc.pi_words.resize(pis.size());
  sc.state.resize(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i)
    sc.state[i] = net.node(dffs[i]).init_value ? ~0ULL : 0ULL;

  Frame& f = sc.f;
  Frame& prev = sc.prev;
  for (std::size_t fr = 0; fr < n_frames; ++fr) {
    if (fr % kCancelBatchFrames == 0) core::poll_cancel(cancel);
    for (std::size_t i = 0; i < pis.size(); ++i) {
      double p = pi_one_prob.empty() ? 0.5 : pi_one_prob[i];
      sc.pi_words[i] = (p == 0.5) ? rng() : biased_word(rng, p);
    }
    sim.eval_into(f, sc.pi_words, sc.state);
    if (capture_frames) capture_frames[fr] = f;
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      a.ones[id] += std::popcount(f[id]);
      // Each of the 64 bit lanes carries an independent trajectory;
      // transitions are counted per lane between consecutive frames.  This
      // is exact for sequential circuits and, with iid inputs, for
      // combinational ones too.
      if (fr > 0) a.toggles[id] += std::popcount(f[id] ^ prev[id]);
    }
    sim.next_state_into(f, sc.state);
    std::swap(prev, f);
  }
}

// Compiled-tape twin of simulate_activity_shard: same RNG consumption
// order, same counting rules, bit-identical counters.  Combinational
// streams evaluate `block` 64-pattern words per tape replay (PI words are
// drawn frame-major — lane j fully before lane j+1 — preserving the exact
// per-frame stream of the interpreted engine); sequential streams carry
// register state frame to frame and run with block == 1.
void simulate_activity_shard_compiled(const Netlist& net,
                                      const CompiledSim& cs, std::size_t block,
                                      std::size_t n_frames, std::uint64_t seed,
                                      std::span<const double> pi_one_prob,
                                      Frame* capture_frames, ActivityAccum& a,
                                      ActivityScratch& sc,
                                      const core::CancelToken* cancel) {
  const auto& pis = net.inputs();
  const auto& live = cs.live();
  const auto& dffs = cs.dffs();
  a.frames += n_frames;
  a.seams += n_frames > 1 ? n_frames - 1 : 0;

  std::mt19937_64 rng(seed);
  auto pi_word = [&](std::size_t i) {
    double p = pi_one_prob.empty() ? 0.5 : pi_one_prob[i];
    return (p == 0.5) ? rng() : biased_word(rng, p);
  };
  std::uint64_t* val = sc.val.data();
  std::uint64_t* last = sc.last.data();

  if (dffs.empty()) {
    const std::size_t B = block;
    for (std::size_t f0 = 0; f0 < n_frames; f0 += B) {
      if ((f0 / B) % kCancelBatchFrames == 0) core::poll_cancel(cancel);
      // Tail blocks evaluate all B lanes but only the first `b` are drawn,
      // counted and captured; stale trailing lanes are inert.
      const std::size_t b = std::min(B, n_frames - f0);
      for (std::size_t j = 0; j < b; ++j)
        for (std::size_t i = 0; i < pis.size(); ++i)
          val[static_cast<std::size_t>(pis[i]) * B + j] = pi_word(i);
      cs.exec_all(val, B);
      // Counting dominates the compiled path (the replay itself amortizes
      // to near-memory speed), so it goes through the dispatched per-ISA
      // kernel: identical integer counts, hardware POPCNT where available.
      count_columns(val, live, B, b, f0 == 0, a.ones.data(), a.toggles.data(),
                    last);
      if (capture_frames)
        for (std::size_t j = 0; j < b; ++j) {
          Frame& fr = capture_frames[f0 + j];
          fr.assign(net.size(), 0);
          for (NodeId id : live)
            fr[id] = val[static_cast<std::size_t>(id) * B + j];
        }
    }
  } else {
    // Sequential: one symbolic trajectory, state stepped per frame.
    sc.state.resize(dffs.size());
    for (std::size_t i = 0; i < dffs.size(); ++i)
      sc.state[i] = net.node(dffs[i]).init_value ? ~0ULL : 0ULL;
    for (std::size_t fr = 0; fr < n_frames; ++fr) {
      if (fr % kCancelBatchFrames == 0) core::poll_cancel(cancel);
      for (std::size_t i = 0; i < pis.size(); ++i) val[pis[i]] = pi_word(i);
      for (std::size_t i = 0; i < dffs.size(); ++i)
        val[dffs[i]] = sc.state[i];
      cs.exec_all(val, 1);
      count_columns(val, live, 1, 1, fr == 0, a.ones.data(), a.toggles.data(),
                    last);
      if (capture_frames) {
        Frame& cf = capture_frames[fr];
        cf.assign(net.size(), 0);
        for (NodeId id : live) cf[id] = val[id];
      }
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        const Node& nd = net.node(dffs[i]);
        std::uint64_t next = val[nd.fanins[0]];
        if (nd.fanins.size() == 2) {
          std::uint64_t en = val[nd.fanins[1]];
          next = (en & next) | (~en & val[dffs[i]]);  // hold on EN = 0
        }
        sc.state[i] = next;
      }
    }
  }
}

}  // namespace

ActivityStats stats_from_counts(std::span<const std::uint64_t> ones,
                                std::span<const std::uint64_t> toggles,
                                std::size_t patterns,
                                std::size_t seam_patterns) {
  ActivityStats st;
  st.signal_prob.assign(ones.size(), 0.0);
  st.transition_prob.assign(ones.size(), 0.0);
  double total = static_cast<double>(patterns);
  double seams = static_cast<double>(seam_patterns);
  st.patterns = patterns;
  for (std::size_t id = 0; id < ones.size(); ++id) {
    st.signal_prob[id] = total > 0 ? ones[id] / total : 0.0;
    st.transition_prob[id] = seams > 0 ? toggles[id] / seams : 0.0;
  }
  return st;
}

ActivityStats measure_activity(const Netlist& net, std::size_t n_frames,
                               std::uint64_t seed,
                               std::span<const double> pi_one_prob,
                               ActivityTrace* capture,
                               const core::CancelToken* cancel) {
  auto dffs = net.dffs();
  const SimOptions opts = sim_options();
  const bool compiled = opts.use_compiled;
  // Sequential streams carry state frame to frame: no lane blocking.
  const std::size_t block =
      dffs.empty() ? normalize_block(opts.block) : 1;

  // Sequential nets form one continuous state trajectory — one shard.
  // Combinational frame streams are iid and shard freely; the plan depends
  // only on n_frames, so results are thread-count independent.
  auto plan = core::plan_shards(dffs.empty() ? n_frames : 0, 64);
  if (capture) {
    capture->frames.assign(n_frames, Frame{});
    capture->shard_start.assign(n_frames, 0);
    if (plan.shards == 1) {
      if (n_frames > 0) capture->shard_start[0] = 1;
    } else {
      for (std::size_t s = 0; s < plan.shards; ++s)
        capture->shard_start[plan.begin(s)] = 1;
    }
  }

  std::optional<CompiledSim> csim;
  std::optional<LogicSim> isim;
  if (compiled)
    csim.emplace(net);
  else
    isim.emplace(net);

  // Dispatch grain: up to two pool indices per execution lane
  // (core::plan_chunks — oversubscription evens out lane load imbalance),
  // each chunk walking a contiguous shard range serially with persistent
  // scratch.  Chunk boundaries depend on the thread count, but per-shard
  // seeds and frame counts do not, and the chunk accumulators fold integer
  // counts of consecutive shards — so the chunk-order merge below
  // reproduces the shard-order merge exactly at any thread count.
  const std::size_t n_chunks = core::plan_chunks(plan.shards);
  std::vector<ActivityAccum> parts(n_chunks);
  std::vector<ActivityScratch> scratch(n_chunks);
  // First-touch NUMA placement: each chunk's accumulators and value block
  // are written first by whichever worker runs the chunk, so their pages
  // land on that worker's node.  The LPS_SIM_NUMA=0 baseline faults
  // everything on the submitting thread instead (single-node placement).
  auto init_chunk = [&](std::size_t c) {
    ActivityAccum& a = parts[c];
    ActivityScratch& sc = scratch[c];
    a.ones.assign(net.size(), 0);
    a.toggles.assign(net.size(), 0);
    if (compiled) {
      // Dead slots must read 0 (LogicSim's f.assign contract); records
      // never write them, so zeroing once per chunk suffices.
      sc.val.assign(net.size() * block, 0);
      sc.last.assign(net.size(), 0);
    }
  };
  const bool first_touch = core::numa_first_touch();
  if (!first_touch)
    for (std::size_t c = 0; c < n_chunks; ++c) init_chunk(c);
  auto run_chunk = [&](std::size_t c) {
    const std::size_t s_begin = c * plan.shards / n_chunks;
    const std::size_t s_end = (c + 1) * plan.shards / n_chunks;
    ActivityAccum& a = parts[c];
    ActivityScratch& sc = scratch[c];
    if (first_touch) init_chunk(c);
    for (std::size_t s = s_begin; s < s_end; ++s) {
      core::poll_cancel(cancel);
      // A single-shard plan keeps the legacy RNG stream (`seed` itself)
      // and runs all frames (sequential plans carry total == 0).
      const bool solo = plan.shards == 1;
      const std::uint64_t sseed = solo ? seed : core::shard_seed(seed, s);
      const std::size_t shard_frames = solo ? n_frames : plan.count(s);
      Frame* cap =
          capture ? capture->frames.data() + plan.begin(s) : nullptr;
      if (compiled)
        simulate_activity_shard_compiled(net, *csim, block, shard_frames,
                                         sseed, pi_one_prob, cap, a, sc,
                                         cancel);
      else
        simulate_activity_shard(net, *isim, dffs, shard_frames, sseed,
                                pi_one_prob, cap, a, sc, cancel);
    }
  };
  if (n_chunks == 1)
    run_chunk(0);
  else
    core::parallel_for(n_chunks, run_chunk);

  // Fixed chunk-order merge of exact integer counts: bit-identical results
  // at any thread count.
  std::vector<std::uint64_t> ones(net.size(), 0), toggles(net.size(), 0);
  std::size_t frames = 0, seams = 0;
  for (const auto& p : parts) {
    for (NodeId id = 0; id < net.size(); ++id) {
      ones[id] += p.ones[id];
      toggles[id] += p.toggles[id];
    }
    frames += p.frames;
    seams += p.seams;
  }

  core::metrics::count("sim.logic.runs");
  core::metrics::count("sim.logic.frames", static_cast<double>(frames));
  core::metrics::count("sim.logic.patterns",
                       static_cast<double>(frames) * 64.0);

  ActivityStats st = stats_from_counts(ones, toggles, frames * 64, seams * 64);
  if (capture) {
    capture->ones = std::move(ones);
    capture->toggles = std::move(toggles);
    capture->patterns = frames * 64;
    capture->seam_patterns = seams * 64;
  }
  return st;
}

bool equivalent_random(const Netlist& a, const Netlist& b,
                       std::size_t n_frames, std::uint64_t seed) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  LogicSim sa(a), sb(b);
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pi(a.inputs().size());
  auto da = a.dffs(), db = b.dffs();
  std::vector<std::uint64_t> qa(da.size()), qb(db.size());
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = a.node(da[i]).init_value ? ~0ULL : 0ULL;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = b.node(db[i]).init_value ? ~0ULL : 0ULL;
  Frame fa, fb;
  for (std::size_t fr = 0; fr < n_frames; ++fr) {
    for (auto& w : pi) w = rng();
    sa.eval_into(fa, pi, qa);
    sb.eval_into(fb, pi, qb);
    for (std::size_t i = 0; i < a.outputs().size(); ++i)
      if (fa[a.outputs()[i]] != fb[b.outputs()[i]]) return false;
    sa.next_state_into(fa, qa);
    sb.next_state_into(fb, qb);
  }
  return true;
}

SimTrace functional_trace(const Netlist& net, std::size_t n_frames,
                          std::uint64_t seed) {
  SimTrace t;
  t.n_inputs = net.inputs().size();
  t.n_outputs = net.outputs().size();
  t.frames = n_frames;
  t.seed = seed;

  LogicSim sim(net);
  auto dffs = net.dffs();
  t.n_dffs = dffs.size();
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pi(net.inputs().size());
  std::vector<std::uint64_t> q(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i)
    q[i] = net.node(dffs[i]).init_value ? ~0ULL : 0ULL;
  std::uint64_t digest = 0x5CA1AB1Eu;
  Frame f;
  for (std::size_t fr = 0; fr < n_frames; ++fr) {
    for (auto& w : pi) w = rng();
    sim.eval_into(f, pi, q);
    for (NodeId o : net.outputs()) digest = core::mix64(digest ^ f[o]);
    sim.next_state_into(f, q);
  }
  t.digest = digest;
  return t;
}

}  // namespace lps::sim
