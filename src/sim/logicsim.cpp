#include "sim/logicsim.hpp"

#include <bit>
#include <random>
#include <stdexcept>

namespace lps::sim {

LogicSim::LogicSim(const Netlist& net)
    : net_(&net), order_(net.topo_order()), dff_list_(net.dffs()) {}

Frame LogicSim::eval(std::span<const std::uint64_t> pi_words,
                     std::span<const std::uint64_t> dff_words) const {
  const Netlist& n = *net_;
  if (pi_words.size() != n.inputs().size())
    throw std::invalid_argument("LogicSim::eval: PI word count mismatch");
  Frame f(n.size(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    f[n.inputs()[i]] = pi_words[i];
  for (std::size_t i = 0; i < dff_list_.size(); ++i) {
    const Node& d = n.node(dff_list_[i]);
    f[dff_list_[i]] = dff_words.empty()
                          ? (d.init_value ? ~0ULL : 0ULL)
                          : dff_words[i];
  }
  std::uint64_t fin[64];
  for (NodeId id : order_) {
    const Node& nd = n.node(id);
    switch (nd.type) {
      case GateType::Input:
      case GateType::Dff:
        break;
      case GateType::Const0:
        f[id] = 0;
        break;
      case GateType::Const1:
        f[id] = ~0ULL;
        break;
      default: {
        std::size_t k = nd.fanins.size();
        if (k <= 64) {
          for (std::size_t j = 0; j < k; ++j) fin[j] = f[nd.fanins[j]];
          f[id] = eval_gate(nd.type, {fin, k});
        } else {
          std::vector<std::uint64_t> big(k);
          for (std::size_t j = 0; j < k; ++j) big[j] = f[nd.fanins[j]];
          f[id] = eval_gate(nd.type, big);
        }
      }
    }
  }
  return f;
}

std::vector<std::uint64_t> LogicSim::outputs_of(const Frame& f) const {
  std::vector<std::uint64_t> r;
  r.reserve(net_->outputs().size());
  for (NodeId o : net_->outputs()) r.push_back(f[o]);
  return r;
}

std::vector<std::uint64_t> LogicSim::next_state_of(const Frame& f) const {
  std::vector<std::uint64_t> r;
  r.reserve(dff_list_.size());
  for (NodeId d : dff_list_) {
    const Node& nd = net_->node(d);
    std::uint64_t next = f[nd.fanins[0]];
    if (nd.fanins.size() == 2) {
      std::uint64_t en = f[nd.fanins[1]];
      next = (en & next) | (~en & f[d]);  // hold on EN = 0
    }
    r.push_back(next);
  }
  return r;
}

namespace {

// Word whose bits are 1 with probability p (16-bit resolution).
std::uint64_t biased_word(std::mt19937_64& rng, double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  std::uint64_t w = 0;
  auto thr = static_cast<std::uint32_t>(p * 65536.0);
  for (int b = 0; b < 64; ++b)
    if ((rng() & 0xFFFF) < thr) w |= 1ULL << b;
  return w;
}

}  // namespace

ActivityStats measure_activity(const Netlist& net, std::size_t n_frames,
                               std::uint64_t seed,
                               std::span<const double> pi_one_prob) {
  LogicSim sim(net);
  std::mt19937_64 rng(seed);
  const auto& pis = net.inputs();
  auto dffs = net.dffs();

  ActivityStats st;
  st.signal_prob.assign(net.size(), 0.0);
  st.transition_prob.assign(net.size(), 0.0);

  std::vector<std::uint64_t> pi_words(pis.size());
  std::vector<std::uint64_t> state(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i)
    state[i] = net.node(dffs[i]).init_value ? ~0ULL : 0ULL;

  std::vector<std::uint64_t> ones(net.size(), 0);
  std::vector<std::uint64_t> toggles(net.size(), 0);
  Frame prev;
  bool have_prev = false;

  for (std::size_t fr = 0; fr < n_frames; ++fr) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      double p = pi_one_prob.empty() ? 0.5 : pi_one_prob[i];
      pi_words[i] = (p == 0.5) ? rng() : biased_word(rng, p);
    }
    Frame f = sim.eval(pi_words, state);
    for (NodeId id = 0; id < net.size(); ++id) {
      if (net.is_dead(id)) continue;
      ones[id] += std::popcount(f[id]);
      // Each of the 64 bit lanes carries an independent trajectory;
      // transitions are counted per lane between consecutive frames.  This
      // is exact for sequential circuits and, with iid inputs, for
      // combinational ones too.
      if (have_prev) toggles[id] += std::popcount(f[id] ^ prev[id]);
    }
    state = sim.next_state_of(f);
    prev = std::move(f);
    have_prev = true;
  }

  double total = static_cast<double>(n_frames) * 64.0;
  double seams =
      n_frames > 1 ? static_cast<double>(n_frames - 1) * 64.0 : 0.0;
  st.patterns = static_cast<std::size_t>(total);
  for (NodeId id = 0; id < net.size(); ++id) {
    st.signal_prob[id] = total > 0 ? ones[id] / total : 0.0;
    st.transition_prob[id] = seams > 0 ? toggles[id] / seams : 0.0;
  }
  return st;
}

bool equivalent_random(const Netlist& a, const Netlist& b,
                       std::size_t n_frames, std::uint64_t seed) {
  if (a.inputs().size() != b.inputs().size()) return false;
  if (a.outputs().size() != b.outputs().size()) return false;
  LogicSim sa(a), sb(b);
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> pi(a.inputs().size());
  auto da = a.dffs(), db = b.dffs();
  std::vector<std::uint64_t> qa(da.size()), qb(db.size());
  for (std::size_t i = 0; i < da.size(); ++i)
    qa[i] = a.node(da[i]).init_value ? ~0ULL : 0ULL;
  for (std::size_t i = 0; i < db.size(); ++i)
    qb[i] = b.node(db[i]).init_value ? ~0ULL : 0ULL;
  for (std::size_t fr = 0; fr < n_frames; ++fr) {
    for (auto& w : pi) w = rng();
    Frame fa = sa.eval(pi, qa);
    Frame fb = sb.eval(pi, qb);
    auto oa = sa.outputs_of(fa);
    auto ob = sb.outputs_of(fb);
    for (std::size_t i = 0; i < oa.size(); ++i)
      if (oa[i] != ob[i]) return false;
    qa = sa.next_state_of(fa);
    qb = sb.next_state_of(fb);
  }
  return true;
}

}  // namespace lps::sim
