#include "sim/simd.hpp"

#include "sim/compiled.hpp"

namespace lps::sim {

namespace {

SimdWidth probe() {
  // Widest width that is BOTH compiled into this binary (the CMake feature
  // checks define LPS_HAVE_*_KERNELS for this library) and reported by the
  // CPU.  __builtin_cpu_supports reads CPUID once and caches internally;
  // we cache the whole decision anyway so the hot paths never re-ask.
#if defined(LPS_HAVE_AVX512_KERNELS)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl"))
    return SimdWidth::Avx512;
#endif
#if defined(LPS_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2")) return SimdWidth::Avx2;
#endif
  return SimdWidth::Scalar;
}

}  // namespace

SimdWidth detect_simd() {
  static const SimdWidth w = probe();
  return w;
}

SimdWidth resolve_simd(SimdWidth requested) {
  SimdWidth detected = detect_simd();
  if (requested == SimdWidth::Auto || requested > detected) return detected;
  return requested;
}

bool simd_compiled(SimdWidth w) {
  switch (w) {
    case SimdWidth::Avx2:
#if defined(LPS_HAVE_AVX2_KERNELS)
      return true;
#else
      return false;
#endif
    case SimdWidth::Avx512:
#if defined(LPS_HAVE_AVX512_KERNELS)
      return true;
#else
      return false;
#endif
    default:
      return true;  // scalar is always built; Auto always resolves
  }
}

const char* simd_name(SimdWidth w) {
  switch (w) {
    case SimdWidth::Scalar: return "scalar";
    case SimdWidth::Avx2: return "avx2";
    case SimdWidth::Avx512: return "avx512";
    case SimdWidth::Auto: return "auto";
  }
  return "scalar";
}

std::size_t simd_lane_words(SimdWidth w) {
  switch (resolve_simd(w)) {
    case SimdWidth::Avx512: return 8;
    case SimdWidth::Avx2: return 4;
    default: return 1;
  }
}

std::string engine_desc() {
  const SimOptions& o = sim_options();
  if (!o.use_compiled) return "interp";
  return std::string("tape[") + simd_name(resolve_simd(o.width)) + ",b" +
         std::to_string(o.block) + "]";
}

}  // namespace lps::sim
