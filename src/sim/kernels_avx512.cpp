// kernels_avx512.cpp — 512-bit kernel build.  This TU (alone) is compiled
// with -mavx512f/bw/dq/vl, so every function here may contain AVX-512
// instructions.  Block 4 uses 256-bit ops (AVX-512 implies AVX2) and
// blocks 1/2 use scalar logic — all with this TU's codegen, so callers
// must only enter when resolve_simd() reported Avx512.

#include "sim/kernels.hpp"

#if defined(LPS_HAVE_AVX512_KERNELS)

#include <immintrin.h>

#include <stdexcept>

#include "sim/kernels_impl.hpp"

namespace lps::sim::kern {

namespace {

/// 256-bit traits for the half-width (block 4) path of this build.
struct Avx2Ops {
  using V = __m256i;
  static constexpr unsigned kWords = 4;
  static V load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zero() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V band(V a, V b) { return _mm256_and_si256(a, b); }
  static V bor(V a, V b) { return _mm256_or_si256(a, b); }
  static V bxor(V a, V b) { return _mm256_xor_si256(a, b); }
  static V bnot(V a) { return _mm256_xor_si256(a, ones()); }
  static V bandnot(V a, V b) { return _mm256_andnot_si256(a, b); }  // ~a & b
};

/// 512-bit word-vector traits: 8 uint64 words per op — a full 16-word
/// frame block is two vector ops per operand.  Bitwise ops are exact per
/// lane, so results match ScalarOps bit for bit.
struct Avx512Ops {
  using V = __m512i;
  static constexpr unsigned kWords = 8;
  static V load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V zero() { return _mm512_setzero_si512(); }
  static V ones() { return _mm512_set1_epi64(-1); }
  static V band(V a, V b) { return _mm512_and_si512(a, b); }
  static V bor(V a, V b) { return _mm512_or_si512(a, b); }
  static V bxor(V a, V b) { return _mm512_xor_si512(a, b); }
  static V bnot(V a) { return _mm512_xor_si512(a, ones()); }
  // ~a & b.  Spelled xor+and rather than _mm512_andnot_si512: that
  // intrinsic's _mm512_undefined_epi32 seed trips GCC's maybe-uninitialized
  // warning, and the compiler fuses this form into vpandn anyway.
  static V bandnot(V a, V b) {
    return _mm512_and_si512(_mm512_xor_si512(a, ones()), b);
  }
};

}  // namespace

void exec_linear_avx512(const std::uint32_t* p, const std::uint32_t* end,
                        std::uint64_t* val, std::size_t block) {
  switch (block) {
    case 1: exec_linear_v<ScalarOps, 1>(p, end, val); break;
    case 2: exec_linear_v<ScalarOps, 2>(p, end, val); break;
    case 4: exec_linear_v<Avx2Ops, 4>(p, end, val); break;
    case 8: exec_linear_v<Avx512Ops, 8>(p, end, val); break;
    case 16: exec_linear_v<Avx512Ops, 16>(p, end, val); break;
    default:
      throw std::invalid_argument("exec_linear_avx512: unsupported block");
  }
}

void exec_list_avx512(const std::uint32_t* tape, const std::uint32_t* offset,
                      std::span<const NodeId> gates, std::uint64_t* val,
                      std::size_t block) {
  switch (block) {
    case 1: exec_list_v<ScalarOps, 1>(tape, offset, gates, val); break;
    case 2: exec_list_v<ScalarOps, 2>(tape, offset, gates, val); break;
    case 4: exec_list_v<Avx2Ops, 4>(tape, offset, gates, val); break;
    case 8: exec_list_v<Avx512Ops, 8>(tape, offset, gates, val); break;
    case 16: exec_list_v<Avx512Ops, 16>(tape, offset, gates, val); break;
    default:
      throw std::invalid_argument("exec_list_avx512: unsupported block");
  }
}

// Built with -mpopcnt (every AVX-512 CPU has POPCNT): the counting loop's
// std::popcount is the hardware instruction here.
void count_columns_avx512(const std::uint64_t* val,
                          std::span<const NodeId> nodes, std::size_t block,
                          std::size_t b, bool first, std::uint64_t* ones,
                          std::uint64_t* toggles, std::uint64_t* last) {
  count_columns_impl(val, nodes, block, b, first, ones, toggles, last);
}

}  // namespace lps::sim::kern

#endif  // LPS_HAVE_AVX512_KERNELS
