#include "sim/stimulus.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <random>

namespace lps::sim {

namespace {
std::uint64_t mask_of(int width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}
}  // namespace

WordStream uniform_stream(int width, std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  WordStream s(n);
  for (auto& w : s) w = rng() & mask_of(width);
  return s;
}

WordStream correlated_stream(int width, std::size_t n, double flip_prob,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  WordStream s;
  s.reserve(n);
  std::uint64_t cur = rng() & mask_of(width);
  auto thr = static_cast<std::uint32_t>(flip_prob * 65536.0);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(cur);
    std::uint64_t flips = 0;
    for (int b = 0; b < width; ++b)
      if ((rng() & 0xFFFF) < thr) flips |= 1ULL << b;
    cur ^= flips;
  }
  return s;
}

WordStream random_walk_stream(int width, std::size_t n, double sigma,
                              std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> step(0.0, sigma);
  const double lo = 0.0;
  const double hi = std::ldexp(1.0, width) - 1.0;
  double x = hi / 2.0;
  WordStream s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    x = std::clamp(x + step(rng), lo, hi);
    s.push_back(static_cast<std::uint64_t>(std::llround(x)) & mask_of(width));
  }
  return s;
}

WordStream address_stream(int width, std::size_t n, double p_seq,
                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto thr = static_cast<std::uint32_t>(p_seq * 65536.0);
  std::uint64_t cur = rng() & mask_of(width);
  WordStream s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(cur);
    if ((rng() & 0xFFFF) < thr)
      cur = (cur + 1) & mask_of(width);
    else
      cur = rng() & mask_of(width);
  }
  return s;
}

std::size_t count_bus_transitions(const WordStream& s, int width) {
  std::size_t t = 0;
  for (std::size_t i = 1; i < s.size(); ++i)
    t += std::popcount((s[i] ^ s[i - 1]) & mask_of(width));
  return t;
}

std::vector<double> stream_bit_probabilities(const WordStream& s, int width) {
  std::vector<double> p(width, 0.0);
  if (s.empty()) return p;
  for (auto w : s)
    for (int b = 0; b < width; ++b)
      if (w >> b & 1) p[b] += 1.0;
  for (auto& x : p) x /= static_cast<double>(s.size());
  return p;
}

}  // namespace lps::sim
