// eventsim.hpp — event-driven timed logic simulation with glitch accounting.
//
// §III-A.2 of the survey: "Spurious transitions account for between 10% and
// 40% of the switching activity power in typical combinational logic
// circuits" (citing Ghosh et al. [16]).  Measuring that — and evaluating
// path balancing — requires a general-delay simulator that propagates every
// transient, not just the settled value.  This module implements the classic
// two-list event-driven algorithm with transport-delay semantics: every
// scheduled transition fires, so glitches travel through the network exactly
// as they do in an unfiltered static CMOS implementation.
//
// The event queue is a circular timing wheel: gate delays are small bounded
// integers, so `max_delay + 1` buckets indexed by (time mod size) cover every
// pending event.  The wheel is sized once per simulator and its buckets are
// reused across vectors, eliminating the per-vector ordered-map rebuild.
//
// Per input-vector pair the simulator counts, per node,
//   total transitions   (timed, includes glitches)
//   functional toggles  (settled value changed: 0 or 1 per vector)
// so that  spurious = total - functional.
//
// measure_timed_activity shards its vector stream across the shared thread
// pool for combinational nets (see core/parallel.hpp): shard decomposition
// and seeds depend only on (n_vectors, seed), and per-shard counts merge in
// shard order, so results are bit-identical at any thread count.

#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "netlist/netlist.hpp"

namespace lps::sim {

struct TimedStats {
  std::vector<double> total_toggles;       // per node, per applied vector
  std::vector<double> functional_toggles;  // per node, per applied vector
  std::size_t vectors = 0;

  double sum_total() const;
  double sum_functional() const;
  /// Fraction of all switching that is spurious (0 when nothing toggles).
  double glitch_fraction() const;

  /// Accumulate another run's counts (associative; counts are integer-valued
  /// doubles, so shard-order merging is exact).
  void merge(const TimedStats& other);
};

/// Event-driven timed simulator.  Gate delays come from Node::delay.
class EventSim {
 public:
  explicit EventSim(const Netlist& net);

  /// Reset to the settled response of the all-zero input vector (registers
  /// at their init values).
  void reset();

  /// Apply one scalar input vector (and, for sequential circuits, clock the
  /// registers), propagate to quiescence, and accumulate transition counts.
  void apply(std::span<const bool> pi_values);

  /// Current settled value of a node.
  bool value(NodeId n) const { return value_[n]; }

  const TimedStats& stats() const { return stats_; }
  void clear_stats();

 private:
  using Change = std::pair<NodeId, bool>;

  // Propagate `init_` (changes at time 0) to quiescence.  Consumes init_.
  void settle();

  const Netlist* net_;
  std::vector<NodeId> order_;
  std::vector<NodeId> dffs_;
  std::vector<char> value_;   // current timed value
  std::vector<char> lsv_;     // last scheduled value (dedup)
  std::vector<char> settled_; // settled value of previous vector
  std::vector<char> state_;   // register state
  bool primed_ = false;
  TimedStats stats_;

  // Circular timing wheel, sized max(1, max gate delay) + 1 buckets; bucket
  // capacity persists across vectors.  Scratch buffers likewise reused.
  std::vector<std::vector<Change>> wheel_;
  std::vector<Change> init_;            // time-0 changes for the next settle
  std::vector<NodeId> touched_;         // gates to re-evaluate this step
  std::vector<std::uint64_t> scratch_;  // fanin words for eval_gate
};

/// Convenience driver: random vectors with optional per-PI one-probability.
/// Combinational nets shard the vector stream across the thread pool (each
/// shard simulates from the reset state under its own seeded stream);
/// sequential nets carry register state and run as one serial shard with the
/// legacy RNG stream.  Deterministic in (n_vectors, seed) at any thread
/// count.  A non-null `cancel` token is polled at shard boundaries and every
/// vector batch within a shard; when it fires the run throws
/// core::CancelledError and all partial counts are discarded.
TimedStats measure_timed_activity(const Netlist& net, std::size_t n_vectors,
                                  std::uint64_t seed,
                                  std::span<const double> pi_one_prob = {},
                                  const core::CancelToken* cancel = nullptr);

}  // namespace lps::sim
