#include "sim/compiled.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/env.hpp"
#include "core/metrics.hpp"
#include "sim/kernels.hpp"
#include "sim/kernels_impl.hpp"

namespace lps::sim {

std::size_t normalize_block(std::size_t b) {
  if (b >= 16) return 16;
  if (b >= 8) return 8;
  if (b >= 4) return 4;
  if (b >= 2) return 2;
  return 1;
}

SimOptions& sim_options() {
  static SimOptions opt = [] {
    SimOptions o;
    // Malformed values are rejected with positioned diagnostics on stderr
    // and fall back to the defaults (core/env.hpp) — "LPS_SIM_COMPILED=off"
    // or "LPS_SIM_BLOCK=banana" no longer silently pass as defaults without
    // telling the operator their knob did nothing.
    o.use_compiled = core::env_bool_or("LPS_SIM_COMPILED", o.use_compiled);
    o.block = normalize_block(static_cast<std::size_t>(core::env_long_or(
        "LPS_SIM_BLOCK", 1, 16, static_cast<long>(o.block))));
    // Choice indices line up with the SimdWidth enumerators; a request the
    // hardware or binary can't honor degrades at dispatch (resolve_simd),
    // not here — the operator's intent is preserved for diagnostics.
    static const char* const kWidths[] = {"scalar", "avx2", "avx512", "auto"};
    o.width = static_cast<SimdWidth>(core::env_choice_or(
        "LPS_SIM_WIDTH", kWidths, 4, static_cast<std::size_t>(o.width)));
    return o;
  }();
  return opt;
}

using Op = kern::Op;  // record opcodes live with the kernels now

namespace {

// Route one tape replay to the kernel build resolve_simd() picked.  The
// AVX entry points are only reachable when their width was detected, so no
// illegal instruction can execute (see kernels.hpp).
void run_linear(SimdWidth w, const std::uint32_t* p, const std::uint32_t* end,
                std::uint64_t* val, std::size_t block) {
  switch (w) {
#if defined(LPS_HAVE_AVX512_KERNELS)
    case SimdWidth::Avx512:
      kern::exec_linear_avx512(p, end, val, block);
      return;
#endif
#if defined(LPS_HAVE_AVX2_KERNELS)
    case SimdWidth::Avx2:
      kern::exec_linear_avx2(p, end, val, block);
      return;
#endif
    default:
      kern::exec_linear_scalar(p, end, val, block);
      return;
  }
}

void run_list(SimdWidth w, const std::uint32_t* tape,
              const std::uint32_t* offset, std::span<const NodeId> gates,
              std::uint64_t* val, std::size_t block) {
  switch (w) {
#if defined(LPS_HAVE_AVX512_KERNELS)
    case SimdWidth::Avx512:
      kern::exec_list_avx512(tape, offset, gates, val, block);
      return;
#endif
#if defined(LPS_HAVE_AVX2_KERNELS)
    case SimdWidth::Avx2:
      kern::exec_list_avx2(tape, offset, gates, val, block);
      return;
#endif
    default:
      kern::exec_list_scalar(tape, offset, gates, val, block);
      return;
  }
}

}  // namespace

void count_columns(const std::uint64_t* val, std::span<const NodeId> nodes,
                   std::size_t block, std::size_t b, bool first,
                   std::uint64_t* ones, std::uint64_t* toggles,
                   std::uint64_t* last) {
  switch (resolve_simd(sim_options().width)) {
#if defined(LPS_HAVE_AVX512_KERNELS)
    case SimdWidth::Avx512:
      kern::count_columns_avx512(val, nodes, block, b, first, ones, toggles,
                                 last);
      return;
#endif
#if defined(LPS_HAVE_AVX2_KERNELS)
    case SimdWidth::Avx2:
      kern::count_columns_avx2(val, nodes, block, b, first, ones, toggles,
                               last);
      return;
#endif
    default:
      kern::count_columns_scalar(val, nodes, block, b, first, ones, toggles,
                                 last);
      return;
  }
}

CompiledSim::CompiledSim(const Netlist& net) : net_(&net) { rebuild(); }

void CompiledSim::rebuild() {
  const Netlist& n = *net_;
  tape_.clear();
  records_ = 0;
  offset_.assign(n.size(), kNoRecord);
  order_.clear();
  live_.clear();
  dff_list_ = n.dffs();
  for (NodeId id : n.topo_order()) {
    const Node& nd = n.node(id);
    if (nd.type == GateType::Input || nd.type == GateType::Dff) continue;
    order_.push_back(id);
  }
  std::size_t words = 0;
  for (NodeId id : order_) words += 2 + n.node(id).fanins.size();
  tape_.reserve(words);
  for (NodeId id : order_) emit(id);
  for (NodeId id = 0; id < n.size(); ++id)
    if (!n.is_dead(id)) live_.push_back(id);
  base_words_ = tape_.size();
  compact_ = true;
  core::metrics::count("sim.compiled.rebuilds");
  core::metrics::count("sim.compiled.records", static_cast<double>(records_));
}

void CompiledSim::emit(NodeId id) {
  const Netlist& net = *net_;
  const Node& nd = net.node(id);
  if (nd.dead || nd.type == GateType::Input || nd.type == GateType::Dff) {
    if (offset_[id] != kNoRecord) {
      offset_[id] = kNoRecord;
      --records_;
    }
    return;
  }
  const auto n = static_cast<std::uint32_t>(nd.fanins.size());
  Op op;
  switch (nd.type) {
    case GateType::Const0: op = Op::Const0; break;
    case GateType::Const1: op = Op::Const1; break;
    case GateType::Buf: op = Op::Buf; break;
    case GateType::Not: op = Op::Not; break;
    case GateType::And: op = n == 2 ? Op::And2 : Op::AndN; break;
    case GateType::Or: op = n == 2 ? Op::Or2 : Op::OrN; break;
    case GateType::Nand: op = n == 2 ? Op::Nand2 : Op::NandN; break;
    case GateType::Nor: op = n == 2 ? Op::Nor2 : Op::NorN; break;
    case GateType::Xor: op = n == 2 ? Op::Xor2 : Op::XorN; break;
    case GateType::Xnor: op = n == 2 ? Op::Xnor2 : Op::XnorN; break;
    case GateType::Mux: op = Op::Mux; break;
    default:
      return;  // Input/Dff handled above; nothing else exists
  }
  if (offset_[id] == kNoRecord) ++records_;
  offset_[id] = static_cast<std::uint32_t>(tape_.size());
  tape_.push_back(static_cast<std::uint32_t>(op) | (n << 8));
  tape_.push_back(id);
  for (NodeId f : nd.fanins) tape_.push_back(f);
}

void CompiledSim::update(const Netlist::TouchedNodes& touched) {
  if (touched.all) {
    rebuild();
    return;
  }
  const Netlist& n = *net_;
  if (offset_.size() < n.size()) offset_.resize(n.size(), kNoRecord);
  for (NodeId id : touched.value_roots) emit(id);
  if (!touched.value_roots.empty()) compact_ = false;
  core::metrics::count("sim.compiled.patches");
  core::metrics::count("sim.compiled.patched_nodes",
                       static_cast<double>(touched.value_roots.size()));
  // Garbage bound: once stale records outweigh the original program,
  // recompile (which also restores the linear-replay form).
  if (tape_.size() > 2 * std::max<std::size_t>(base_words_, 256)) rebuild();
}

void CompiledSim::revert_to(std::size_t n_nodes,
                            std::span<const NodeId> patched) {
  if (offset_.size() > n_nodes) {
    for (std::size_t id = n_nodes; id < offset_.size(); ++id)
      if (offset_[id] != kNoRecord) --records_;
    offset_.resize(n_nodes);
  }
  for (NodeId id : patched)
    if (id < n_nodes) emit(id);
  compact_ = false;
  if (tape_.size() > 2 * std::max<std::size_t>(base_words_, 256)) rebuild();
}

void CompiledSim::exec_all(std::uint64_t* val, std::size_t block) const {
  if (!compact_)
    throw std::logic_error(
        "CompiledSim::exec_all: tape is patched; use exec_gates");
  if (block != normalize_block(block))
    throw std::invalid_argument("CompiledSim::exec_all: unsupported block");
  run_linear(resolve_simd(sim_options().width), tape_.data(),
             tape_.data() + tape_.size(), val, block);
}

void CompiledSim::exec_gates(std::uint64_t* val, std::size_t block,
                             std::span<const NodeId> gates) const {
  if (block != normalize_block(block))
    throw std::invalid_argument("CompiledSim::exec_gates: unsupported block");
  run_list(resolve_simd(sim_options().width), tape_.data(), offset_.data(),
           gates, val, block);
}

ConeSchedule CompiledSim::cone_schedule(const std::vector<bool>& mask) const {
  const Netlist& n = *net_;
  if (mask.size() != n.size())
    throw std::invalid_argument(
        "CompiledSim::cone_schedule: mask size mismatch");
  ConeSchedule s;
  // Depth-first postorder over the masked subgraph only: O(cone) rather
  // than a full topo sort, and valid after patches (new nodes are ordered
  // here, not by the stale compact order()).
  std::vector<std::uint8_t> state(n.size(), 0);  // 0 new, 1 open, 2 done
  std::vector<std::pair<NodeId, std::uint32_t>> stack;
  auto leaf = [&](NodeId id) {
    const Node& nd = n.node(id);
    if (nd.dead || nd.type == GateType::Input) {
      state[id] = 2;
      return true;
    }
    if (nd.type == GateType::Dff) {
      s.dffs.push_back(id);
      state[id] = 2;
      return true;
    }
    return false;
  };
  for (NodeId root = 0; root < n.size(); ++root) {
    if (!mask[root] || state[root] || leaf(root)) continue;
    stack.emplace_back(root, 0);
    state[root] = 1;
    while (!stack.empty()) {
      auto& [id, k] = stack.back();
      const auto& fi = n.node(id).fanins;
      if (k == fi.size()) {
        s.gates.push_back(id);
        state[id] = 2;
        stack.pop_back();
        continue;
      }
      NodeId f = fi[k++];
      if (mask[f] && !state[f] && !leaf(f)) {
        stack.emplace_back(f, 0);
        state[f] = 1;
      }
    }
  }
  return s;
}

void CompiledSim::eval_into(Frame& f, std::span<const std::uint64_t> pi_words,
                            std::span<const std::uint64_t> dff_words) const {
  const Netlist& n = *net_;
  if (pi_words.size() != n.inputs().size())
    throw std::invalid_argument("CompiledSim::eval: PI word count mismatch");
  f.assign(n.size(), 0);
  for (std::size_t i = 0; i < pi_words.size(); ++i)
    f[n.inputs()[i]] = pi_words[i];
  // dff_list_ goes stale after patches; re-derive in that case.
  const std::vector<NodeId> fresh = compact_ ? std::vector<NodeId>{} : n.dffs();
  const std::vector<NodeId>& dffs = compact_ ? dff_list_ : fresh;
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Node& d = n.node(dffs[i]);
    f[dffs[i]] =
        dff_words.empty() ? (d.init_value ? ~0ULL : 0ULL) : dff_words[i];
  }
  if (compact_) {
    exec_all(f.data(), 1);
  } else {
    std::vector<bool> mask(n.size());
    for (NodeId id = 0; id < n.size(); ++id) mask[id] = !n.is_dead(id);
    auto sched = cone_schedule(mask);
    exec_gates(f.data(), 1, sched.gates);
  }
}

}  // namespace lps::sim
