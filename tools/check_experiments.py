#!/usr/bin/env python3
"""Validate measured experiment claims against their acceptance bands.

Each bench binary run with `--json <file>` (optionally `--claims-only`)
emits a "claims" object: the E-row values from EXPERIMENTS.md as
machine-readable numbers ("E9.saving_w8": 0.184, ...).  This script checks
every claim against the committed bands in experiments_expected.json and
exits non-zero on any drift, so a regression in a reproduced result fails
CI instead of silently rotting in a table nobody re-reads.

Band forms (experiments_expected.json, {"claims": {key: band}}):
    {"min": 0.10}                    value >= 0.10
    {"max": 0.40}                    value <= 0.40
    {"min": 0.10, "max": 0.40}      both
    {"equals": 4}                    exact (tol defaults to 0)
    {"equals": 0.5, "tol": 1e-9}    |value - 0.5| <= 1e-9
A band may carry a "note" field (ignored here, documentation only) and an
"optional": true flag: an optional claim is still checked when measured,
but a missing optional claim is reported as skipped instead of failing.
(Used for host-dependent measurements, e.g. parallel speedups that only
exist on runners with enough hardware threads.)

Usage:
    python3 tools/check_experiments.py out/*.json
    python3 tools/check_experiments.py out/*.json --expected experiments_expected.json
"""

import argparse
import json
import sys


def load_claims(paths):
    """Collect the union of "claims" from bench JSON files."""
    claims = {}
    sources = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for key, value in doc.get("claims", {}).items():
            if key in claims and claims[key] != value:
                print(
                    f"warning: {key} re-measured by {path} "
                    f"({claims[key]} -> {value}); keeping the new value",
                    file=sys.stderr,
                )
            claims[key] = value
            sources[key] = doc.get("binary", path)
    return claims, sources


def check_band(value, band):
    """Return None if value satisfies band, else a failure description."""
    if "equals" in band:
        tol = band.get("tol", 0.0)
        if abs(value - band["equals"]) > tol:
            return f"expected {band['equals']} (tol {tol})"
        return None
    lo = band.get("min")
    hi = band.get("max")
    if lo is None and hi is None:
        return "band has no min/max/equals constraint"
    if lo is not None and value < lo:
        return f"below min {lo}"
    if hi is not None and value > hi:
        return f"above max {hi}"
    return None


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="bench JSON files with claims")
    ap.add_argument("--expected", default="experiments_expected.json")
    ap.add_argument(
        "--strict-extra",
        action="store_true",
        help="also fail on measured claims that have no expected band",
    )
    args = ap.parse_args(argv)

    with open(args.expected) as f:
        expected = json.load(f)["claims"]
    claims, sources = load_claims(args.inputs)

    failures = []
    checked = 0
    skipped = 0
    for key in sorted(expected):
        band = expected[key]
        if key not in claims:
            if band.get("optional"):
                skipped += 1
                print(f"  {key} ... skipped (optional, not emitted)")
            else:
                failures.append(f"{key}: MISSING (no bench emitted it)")
            continue
        checked += 1
        err = check_band(claims[key], band)
        status = "ok" if err is None else f"FAIL ({err})"
        print(f"  {key} = {claims[key]:g} [{sources[key]}] ... {status}")
        if err is not None:
            failures.append(f"{key}: value {claims[key]:g} {err}")

    extra = sorted(set(claims) - set(expected))
    if extra:
        label = "FAIL" if args.strict_extra else "note"
        print(f"{label}: {len(extra)} measured claim(s) without a band: "
              + ", ".join(extra))
        if args.strict_extra:
            failures.extend(f"{k}: no expected band" for k in extra)

    experiments = {k.split(".", 1)[0] for k in expected}
    skipped_txt = f", {skipped} optional skipped" if skipped else ""
    print(
        f"\n{checked}/{len(expected)} bands checked across "
        f"{len(experiments)} experiments; {len(failures)} failure(s)"
        f"{skipped_txt}"
    )
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
