#!/usr/bin/env python3
"""Aggregate per-binary bench JSON files into BENCH_RESULTS.json.

Each bench binary run with `--json <file>` writes
    {"binary": "bench_estimators", "results": [{"name", "wall_ms", "iterations"}, ...],
     "claims": {...}, "metrics": {...}}
This script merges those files, computes parallel speedups for benchmarks
registered with thread-count Args (names like "bm_foo_par/1" vs
"bm_foo_par/4"), computes incremental-vs-full speedups for paired names
("bm_foo_full" vs "bm_foo_inc"), computes compiled-vs-interpreted engine
speedups for paired names ("bm_foo_interp" vs "bm_foo_comp"), computes
speculative-scoring speedups for worker-paired names ("bm_foo_w1" vs
"bm_foo_w4"), lifts the per-circuit datapath-rewrite savings out of the
E25.saving.* claims, and
writes one top-level document so the perf trajectory is tracked across PRs.

By default an existing output file is MERGED, not overwritten: binaries
absent from this run keep their previous entry, and each benchmark keeps a
bounded wall_ms history (previous runs, oldest first) so a single partial
run no longer wipes the trajectory.  Pass --fresh to discard the existing
file and start over.

Usage:
    python3 tools/aggregate_bench.py out/*.json -o BENCH_RESULTS.json
    python3 tools/aggregate_bench.py out/*.json -o BENCH_RESULTS.json --fresh
"""

import argparse
import json
import os
import re
import sys

HISTORY_CAP = 20  # prior wall_ms samples kept per benchmark


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "binary" not in doc or "results" not in doc:
        raise ValueError(f"{path}: not a bench JSON file")
    return doc


def speedups(results):
    """Pair up 'name/1' baselines with 'name/N' variants."""
    base = {}
    for r in results:
        m = re.fullmatch(r"(.+)/1", r["name"])
        if m:
            base[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)/(\d+)", r["name"])
        if not m or m.group(2) == "1":
            continue
        stem, threads = m.group(1), int(m.group(2))
        if stem in base and r["wall_ms"] > 0:
            out.append(
                {
                    "name": stem,
                    "threads": threads,
                    "speedup": round(base[stem] / r["wall_ms"], 3),
                }
            )
    return out


def incremental_speedups(results):
    """Pair up '<stem>_full' baselines with '<stem>_inc' variants.

    bench_incremental registers each re-estimation workload twice: a full
    power::analyze per iteration (_full) and an IncrementalAnalyzer cone
    update (_inc).  The ratio is the wall-clock win of cone-scoped
    re-estimation; < 1 is possible (and honest) when the touched cone
    covers the whole circuit, e.g. a mutation feeding a register chain.
    """
    full = {}
    for r in results:
        m = re.fullmatch(r"(.+)_full", r["name"])
        if m:
            full[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)_inc", r["name"])
        if m and m.group(1) in full and r["wall_ms"] > 0:
            out.append(
                {
                    "name": m.group(1),
                    "speedup": round(full[m.group(1)] / r["wall_ms"], 3),
                }
            )
    return out


def compiled_speedups(results):
    """Pair up '<stem>_interp' baselines with '<stem>_comp' variants.

    Engine-paired benchmarks run the same workload through the per-gate
    interpreter (_interp) and the compiled flat tape (_comp); the ratio is
    the wall-clock win of the compiled simulation engine.
    """
    interp = {}
    for r in results:
        m = re.fullmatch(r"(.+)_interp", r["name"])
        if m:
            interp[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)_comp", r["name"])
        if m and m.group(1) in interp and r["wall_ms"] > 0:
            out.append(
                {
                    "name": m.group(1),
                    "speedup": round(interp[m.group(1)] / r["wall_ms"], 3),
                }
            )
    return out


def simd_speedups(results):
    """Pair '<stem>_wide_scalar' baselines with '<stem>_wide_<isa>' variants.

    Width-paired benchmarks run the same compiled-tape workload with the
    kernel lane width forced to scalar and to each wide ISA; the ratio is
    the wall-clock win of the SIMD kernels alone.  A width the host cannot
    run is skipped by the bench (SkipWithError) and absent from the JSON,
    so pairs simply don't form on narrow machines.
    """
    scalar = {}
    for r in results:
        m = re.fullmatch(r"(.+)_wide_scalar", r["name"])
        if m:
            scalar[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)_wide_(avx2|avx512)", r["name"])
        if m and m.group(1) in scalar and r["wall_ms"] > 0:
            out.append(
                {
                    "name": m.group(1),
                    "isa": m.group(2),
                    "speedup": round(scalar[m.group(1)] / r["wall_ms"], 3),
                }
            )
    return out


def speculative_speedups(results):
    """Pair '<stem>_w1' baselines with '<stem>_w4' variants.

    Worker-paired benchmarks run the same optimization-engine workload with
    speculative candidate scoring at 1 and 4 workers; the results are
    bit-identical by construction, so the ratio is purely the wall-clock
    win of speculation.  On boxes without 4 hardware threads the ratio is
    honestly < 1 (thread overhead with no cores behind it).
    """
    w1 = {}
    for r in results:
        m = re.fullmatch(r"(.+)_w1", r["name"])
        if m:
            w1[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)_w4", r["name"])
        if m and m.group(1) in w1 and r["wall_ms"] > 0:
            out.append(
                {
                    "name": m.group(1),
                    "workers": 4,
                    "speedup": round(w1[m.group(1)] / r["wall_ms"], 3),
                }
            )
    return out


def rewrite_savings(claims):
    """Extract the per-circuit datapath-rewrite savings table.

    bench_rewrite claims the engine-level switching reduction per family
    circuit as 'E25.saving.<circuit>'; surfacing them as a column keeps
    the optimization trajectory visible next to the timing history.
    """
    out = []
    for key in sorted(claims or {}):
        m = re.fullmatch(r"E25\.saving\.(.+)", key)
        if m:
            out.append({"name": m.group(1), "saving": round(claims[key], 4)})
    return out


def bdd_synth_savings(claims):
    """Extract the per-circuit hybrid BDD->MUX extraction savings table.

    bench_bdd_synth claims the engine-level switching reduction per family
    circuit as 'E27.saving.<circuit>'.  Hybrid extraction keeps a cone only
    when the MUX network beats the original structure through the power
    oracle, so most entries are honestly 0.0 — the column tracks where (and
    whether) the extractor still finds wins as the generators evolve.
    """
    out = []
    for key in sorted(claims or {}):
        m = re.fullmatch(r"E27\.saving\.(.+)", key)
        if m:
            out.append({"name": m.group(1), "saving": round(claims[key], 4)})
    return out


def load_existing(path):
    """Previous aggregate, keyed by binary name.  Missing/corrupt -> {}."""
    try:
        with open(path) as f:
            doc = json.load(f)
        return {b["binary"]: b for b in doc.get("benchmarks", [])}
    except (OSError, ValueError, KeyError, TypeError):
        return {}


def merge_results(new_results, old_entry):
    """Attach per-benchmark wall_ms history from the previous aggregate.

    The previous run's wall_ms (plus its own history, if any) becomes the
    new record's "history" list, oldest first, capped at HISTORY_CAP.
    """
    old_by_name = {r["name"]: r for r in (old_entry or {}).get("results", [])}
    merged = []
    for r in new_results:
        rec = dict(r)
        prev = old_by_name.get(rec["name"])
        if prev is not None:
            history = list(prev.get("history", []))
            if "wall_ms" in prev:
                history.append(prev["wall_ms"])
            rec["history"] = history[-HISTORY_CAP:]
        merged.append(rec)
    return merged


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="per-binary bench JSON files")
    ap.add_argument("-o", "--output", default="BENCH_RESULTS.json")
    ap.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing output file instead of merging into it",
    )
    args = ap.parse_args(argv)

    existing = {} if args.fresh else load_existing(args.output)

    by_binary = dict(existing)  # binaries not re-run keep their old entry
    for path in args.inputs:
        doc = load(path)
        old = existing.get(doc["binary"])
        entry = {
            "binary": doc["binary"],
            "results": merge_results(doc["results"], old),
            "speedups": speedups(doc["results"]),
        }
        inc = incremental_speedups(doc["results"])
        if inc:
            entry["incremental_speedups"] = inc
        comp = compiled_speedups(doc["results"])
        if comp:
            entry["compiled_speedups"] = comp
        simd = simd_speedups(doc["results"])
        if simd:
            entry["simd_speedups"] = simd
        spec = speculative_speedups(doc["results"])
        if spec:
            entry["speculative_speedups"] = spec
        rw = rewrite_savings(doc.get("claims"))
        if rw:
            entry["rewrite_savings"] = rw
        bs = bdd_synth_savings(doc.get("claims"))
        if bs:
            entry["bdd_synth_savings"] = bs
        if doc.get("claims"):
            entry["claims"] = doc["claims"]
        by_binary[doc["binary"]] = entry
    benches = sorted(by_binary.values(), key=lambda b: b["binary"])

    tmp = args.output + ".tmp"
    with open(tmp, "w") as f:
        json.dump({"benchmarks": benches}, f, indent=2)
        f.write("\n")
    os.replace(tmp, args.output)
    total = sum(len(b["results"]) for b in benches)
    print(f"{args.output}: {len(benches)} binaries, {total} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
