#!/usr/bin/env python3
"""Aggregate per-binary bench JSON files into BENCH_RESULTS.json.

Each bench binary run with `--json <file>` writes
    {"binary": "bench_estimators", "results": [{"name", "wall_ms", "iterations"}, ...]}
This script merges those files, computes parallel speedups for benchmarks
registered with thread-count Args (names like "bm_foo_par/1" vs
"bm_foo_par/4"), and writes one top-level document so the perf trajectory
is tracked across PRs.

Usage:
    python3 tools/aggregate_bench.py out/*.json -o BENCH_RESULTS.json
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "binary" not in doc or "results" not in doc:
        raise ValueError(f"{path}: not a bench JSON file")
    return doc


def speedups(results):
    """Pair up 'name/1' baselines with 'name/N' variants."""
    base = {}
    for r in results:
        m = re.fullmatch(r"(.+)/1", r["name"])
        if m:
            base[m.group(1)] = r["wall_ms"]
    out = []
    for r in results:
        m = re.fullmatch(r"(.+)/(\d+)", r["name"])
        if not m or m.group(2) == "1":
            continue
        stem, threads = m.group(1), int(m.group(2))
        if stem in base and r["wall_ms"] > 0:
            out.append(
                {
                    "name": stem,
                    "threads": threads,
                    "speedup": round(base[stem] / r["wall_ms"], 3),
                }
            )
    return out


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="per-binary bench JSON files")
    ap.add_argument("-o", "--output", default="BENCH_RESULTS.json")
    args = ap.parse_args(argv)

    benches = []
    for path in args.inputs:
        doc = load(path)
        benches.append(
            {
                "binary": doc["binary"],
                "results": doc["results"],
                "speedups": speedups(doc["results"]),
            }
        )
    benches.sort(key=lambda b: b["binary"])

    with open(args.output, "w") as f:
        json.dump({"benchmarks": benches}, f, indent=2)
        f.write("\n")
    total = sum(len(b["results"]) for b in benches)
    print(f"{args.output}: {len(benches)} binaries, {total} benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
