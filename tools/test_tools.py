#!/usr/bin/env python3
"""Regression tests for aggregate_bench.py and check_experiments.py.

Run directly (python3 tools/test_tools.py) or via ctest (tools_py target).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import aggregate_bench  # noqa: E402
import check_experiments  # noqa: E402


def write_json(path, doc):
    with open(path, "w") as f:
        json.dump(doc, f)


def bench_doc(binary, wall_ms, claims=None):
    return {
        "binary": binary,
        "results": [
            {"name": "bm_x", "wall_ms": wall_ms, "iterations": 10},
            {"name": "bm_par/1", "wall_ms": 4.0, "iterations": 5},
            {"name": "bm_par/4", "wall_ms": 1.0, "iterations": 5},
        ],
        "claims": claims or {},
    }


class AggregateBenchTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.out = os.path.join(self.dir.name, "BENCH_RESULTS.json")

    def tearDown(self):
        self.dir.cleanup()

    def run_agg(self, inputs, *extra):
        argv = inputs + ["-o", self.out] + list(extra)
        self.assertEqual(aggregate_bench.main(argv), 0)
        with open(self.out) as f:
            return json.load(f)

    def test_merge_preserves_history_across_runs(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0))
        self.run_agg([a])
        write_json(a, bench_doc("bench_a", 12.0))
        write_json(a2 := os.path.join(self.dir.name, "a2.json"),
                   bench_doc("bench_a", 14.0))
        doc = self.run_agg([a])
        doc = self.run_agg([a2])
        (entry,) = doc["benchmarks"]
        bm_x = next(r for r in entry["results"] if r["name"] == "bm_x")
        # Third run: current 14.0, history holds the two prior runs in order.
        self.assertEqual(bm_x["wall_ms"], 14.0)
        self.assertEqual(bm_x["history"], [10.0, 12.0])

    def test_merge_keeps_binaries_absent_from_this_run(self):
        a = os.path.join(self.dir.name, "a.json")
        b = os.path.join(self.dir.name, "b.json")
        write_json(a, bench_doc("bench_a", 10.0))
        write_json(b, bench_doc("bench_b", 20.0))
        self.run_agg([a, b])
        write_json(a, bench_doc("bench_a", 11.0))
        doc = self.run_agg([a])  # partial run: only bench_a re-measured
        names = [e["binary"] for e in doc["benchmarks"]]
        self.assertEqual(names, ["bench_a", "bench_b"])

    def test_fresh_discards_existing(self):
        a = os.path.join(self.dir.name, "a.json")
        b = os.path.join(self.dir.name, "b.json")
        write_json(a, bench_doc("bench_a", 10.0))
        write_json(b, bench_doc("bench_b", 20.0))
        self.run_agg([a, b])
        write_json(a, bench_doc("bench_a", 11.0))
        doc = self.run_agg([a], "--fresh")
        (entry,) = doc["benchmarks"]
        self.assertEqual(entry["binary"], "bench_a")
        bm_x = next(r for r in entry["results"] if r["name"] == "bm_x")
        self.assertNotIn("history", bm_x)

    def test_history_capped(self):
        a = os.path.join(self.dir.name, "a.json")
        for i in range(aggregate_bench.HISTORY_CAP + 5):
            write_json(a, bench_doc("bench_a", float(i)))
            doc = self.run_agg([a])
        bm_x = next(r for r in doc["benchmarks"][0]["results"]
                    if r["name"] == "bm_x")
        self.assertEqual(len(bm_x["history"]), aggregate_bench.HISTORY_CAP)
        self.assertEqual(bm_x["history"][-1],
                         float(aggregate_bench.HISTORY_CAP + 3))

    def test_claims_and_speedups_carried_through(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0, {"E1.x": 0.93}))
        doc = self.run_agg([a])
        (entry,) = doc["benchmarks"]
        self.assertEqual(entry["claims"], {"E1.x": 0.93})
        (sp,) = entry["speedups"]
        self.assertEqual(sp["threads"], 4)
        self.assertAlmostEqual(sp["speedup"], 4.0)

    def test_incremental_speedups_from_full_inc_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_incremental", 10.0)
        doc["results"] += [
            {"name": "bm_reest_m8_full", "wall_ms": 9.0, "iterations": 5},
            {"name": "bm_reest_m8_inc", "wall_ms": 1.5, "iterations": 5},
            {"name": "bm_reest_ctr_full", "wall_ms": 2.0, "iterations": 5},
            {"name": "bm_reest_ctr_inc", "wall_ms": 2.5, "iterations": 5},
            # Unpaired names contribute nothing.
            {"name": "bm_orphan_inc", "wall_ms": 1.0, "iterations": 5},
        ]
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        by_name = {s["name"]: s["speedup"]
                   for s in entry["incremental_speedups"]}
        self.assertEqual(by_name, {"bm_reest_m8": 6.0, "bm_reest_ctr": 0.8})

    def test_incremental_speedups_absent_without_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0))
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("incremental_speedups", entry)

    def test_compiled_speedups_from_interp_comp_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_estimators", 10.0)
        doc["results"] += [
            {"name": "bm_zd_mult8_interp", "wall_ms": 6.0, "iterations": 5},
            {"name": "bm_zd_mult8_comp", "wall_ms": 2.5, "iterations": 5},
            # Unpaired names contribute nothing.
            {"name": "bm_orphan_comp", "wall_ms": 1.0, "iterations": 5},
        ]
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        by_name = {s["name"]: s["speedup"]
                   for s in entry["compiled_speedups"]}
        self.assertEqual(by_name, {"bm_zd_mult8": 2.4})

    def test_compiled_speedups_absent_without_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0))
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("compiled_speedups", entry)

    def test_simd_speedups_from_wide_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_estimators", 10.0)
        doc["results"] += [
            {"name": "bm_zd_mult8_wide_scalar", "wall_ms": 8.0,
             "iterations": 5},
            {"name": "bm_zd_mult8_wide_avx2", "wall_ms": 4.0,
             "iterations": 5},
            {"name": "bm_zd_mult8_wide_avx512", "wall_ms": 2.0,
             "iterations": 5},
            # A host without the wide build emits no _wide_avx* entry;
            # an unpaired wide entry contributes nothing either.
            {"name": "bm_orphan_wide_avx512", "wall_ms": 1.0,
             "iterations": 5},
        ]
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        by_isa = {(s["name"], s["isa"]): s["speedup"]
                  for s in entry["simd_speedups"]}
        self.assertEqual(by_isa, {("bm_zd_mult8", "avx2"): 2.0,
                                  ("bm_zd_mult8", "avx512"): 4.0})

    def test_simd_speedups_absent_without_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_a", 10.0)
        doc["results"].append(
            {"name": "bm_solo_wide_scalar", "wall_ms": 3.0, "iterations": 5})
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("simd_speedups", entry)

    def test_speculative_speedups_from_worker_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_rewrite", 10.0)
        doc["results"] += [
            {"name": "bm_rewrite_engine_dct8_w1", "wall_ms": 6.0,
             "iterations": 5},
            {"name": "bm_rewrite_engine_dct8_w4", "wall_ms": 2.0,
             "iterations": 5},
            # A 1-core box is honestly slower with workers.
            {"name": "bm_flow_w1", "wall_ms": 3.0, "iterations": 5},
            {"name": "bm_flow_w4", "wall_ms": 4.0, "iterations": 5},
            # Unpaired names contribute nothing.
            {"name": "bm_orphan_w4", "wall_ms": 1.0, "iterations": 5},
        ]
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        by_name = {s["name"]: (s["workers"], s["speedup"])
                   for s in entry["speculative_speedups"]}
        self.assertEqual(by_name, {"bm_rewrite_engine_dct8": (4, 3.0),
                                   "bm_flow": (4, 0.75)})

    def test_speculative_speedups_absent_without_pairs(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_a", 10.0)
        doc["results"].append(
            {"name": "bm_solo_w1", "wall_ms": 3.0, "iterations": 5})
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("speculative_speedups", entry)

    def test_rewrite_savings_from_e25_claims(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_rewrite", 10.0, {
            "E25.saving.mult8": 0.11421,
            "E25.saving.dct8": 0.07133,
            "E25.reduction_geomean": 0.135,  # not a per-circuit saving
            "E25.soundness": 1.0,
        })
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertEqual(entry["rewrite_savings"],
                         [{"name": "dct8", "saving": 0.0713},
                          {"name": "mult8", "saving": 0.1142}])

    def test_rewrite_savings_absent_without_e25_claims(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0, {"E1.x": 0.93}))
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("rewrite_savings", entry)

    def test_bdd_synth_savings_from_e27_claims(self):
        a = os.path.join(self.dir.name, "a.json")
        doc = bench_doc("bench_bdd_synth", 10.0, {
            "E27.saving.addsub8": 0.00621,
            "E27.saving.mult4": 0.0,  # honest revert-everything entry
            "E27.synth_saving_geomean": 0.0123,  # not a per-circuit saving
            "E27.soundness": 1.0,
        })
        write_json(a, doc)
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertEqual(entry["bdd_synth_savings"],
                         [{"name": "addsub8", "saving": 0.0062},
                          {"name": "mult4", "saving": 0.0}])

    def test_bdd_synth_savings_absent_without_e27_claims(self):
        a = os.path.join(self.dir.name, "a.json")
        write_json(a, bench_doc("bench_a", 10.0, {"E25.saving.dct8": 0.07}))
        out = self.run_agg([a])
        (entry,) = out["benchmarks"]
        self.assertNotIn("bdd_synth_savings", entry)


class CheckExperimentsTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def run_check(self, claims, bands, *extra):
        bench = os.path.join(self.dir.name, "bench.json")
        expected = os.path.join(self.dir.name, "expected.json")
        write_json(bench, {"binary": "b", "results": [], "claims": claims})
        write_json(expected, {"claims": bands})
        return check_experiments.main([bench, "--expected", expected]
                                      + list(extra))

    def test_in_band_passes(self):
        rc = self.run_check(
            {"E5.g": 0.25, "E9.w": 4.0},
            {"E5.g": {"min": 0.1, "max": 0.4}, "E9.w": {"equals": 4}},
        )
        self.assertEqual(rc, 0)

    def test_below_min_fails(self):
        self.assertEqual(
            self.run_check({"E5.g": 0.05}, {"E5.g": {"min": 0.1}}), 1)

    def test_above_max_fails(self):
        self.assertEqual(
            self.run_check({"E5.g": 0.5}, {"E5.g": {"max": 0.4}}), 1)

    def test_equals_with_tolerance(self):
        self.assertEqual(
            self.run_check({"E12.h": 0.5000001},
                           {"E12.h": {"equals": 0.5, "tol": 1e-3}}), 0)
        self.assertEqual(
            self.run_check({"E12.h": 0.51},
                           {"E12.h": {"equals": 0.5, "tol": 1e-3}}), 1)

    def test_missing_claim_fails(self):
        self.assertEqual(self.run_check({}, {"E1.x": {"min": 0.9}}), 1)

    def test_missing_optional_claim_skips(self):
        self.assertEqual(
            self.run_check({}, {"E22.p": {"min": 1.5, "optional": True}}), 0)

    def test_present_optional_claim_still_checked(self):
        band = {"E22.p": {"min": 1.5, "optional": True}}
        self.assertEqual(self.run_check({"E22.p": 2.0}, band), 0)
        self.assertEqual(self.run_check({"E22.p": 1.1}, band), 1)

    def test_extra_claim_ok_unless_strict(self):
        self.assertEqual(self.run_check({"E1.x": 1.0, "E1.y": 2.0},
                                        {"E1.x": {"min": 0.9}}), 0)
        self.assertEqual(self.run_check({"E1.x": 1.0, "E1.y": 2.0},
                                        {"E1.x": {"min": 0.9}},
                                        "--strict-extra"), 1)

    def test_check_band_helper(self):
        self.assertIsNone(check_experiments.check_band(
            0.2, {"min": 0.1, "max": 0.4}))
        self.assertIsNotNone(check_experiments.check_band(0.2, {}))


if __name__ == "__main__":
    unittest.main()
