# Empty compiler generated dependencies file for bench_sizing.
# This may be replaced when dependencies are built.
