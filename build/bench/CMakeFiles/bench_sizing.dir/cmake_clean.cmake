file(REMOVE_RECURSE
  "CMakeFiles/bench_sizing.dir/bench_sizing.cpp.o"
  "CMakeFiles/bench_sizing.dir/bench_sizing.cpp.o.d"
  "bench_sizing"
  "bench_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
