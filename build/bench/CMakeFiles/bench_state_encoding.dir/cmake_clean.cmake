file(REMOVE_RECURSE
  "CMakeFiles/bench_state_encoding.dir/bench_state_encoding.cpp.o"
  "CMakeFiles/bench_state_encoding.dir/bench_state_encoding.cpp.o.d"
  "bench_state_encoding"
  "bench_state_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
