file(REMOVE_RECURSE
  "CMakeFiles/bench_factoring.dir/bench_factoring.cpp.o"
  "CMakeFiles/bench_factoring.dir/bench_factoring.cpp.o.d"
  "bench_factoring"
  "bench_factoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
