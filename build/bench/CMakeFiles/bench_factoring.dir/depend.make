# Empty dependencies file for bench_factoring.
# This may be replaced when dependencies are built.
