file(REMOVE_RECURSE
  "CMakeFiles/bench_estimators.dir/bench_estimators.cpp.o"
  "CMakeFiles/bench_estimators.dir/bench_estimators.cpp.o.d"
  "bench_estimators"
  "bench_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
