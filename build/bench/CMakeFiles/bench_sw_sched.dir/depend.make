# Empty dependencies file for bench_sw_sched.
# This may be replaced when dependencies are built.
