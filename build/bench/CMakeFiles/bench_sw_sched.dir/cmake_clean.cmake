file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_sched.dir/bench_sw_sched.cpp.o"
  "CMakeFiles/bench_sw_sched.dir/bench_sw_sched.cpp.o.d"
  "bench_sw_sched"
  "bench_sw_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
