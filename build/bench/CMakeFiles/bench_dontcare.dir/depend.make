# Empty dependencies file for bench_dontcare.
# This may be replaced when dependencies are built.
