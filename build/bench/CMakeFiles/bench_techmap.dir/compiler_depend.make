# Empty compiler generated dependencies file for bench_techmap.
# This may be replaced when dependencies are built.
