file(REMOVE_RECURSE
  "CMakeFiles/bench_glitch_balance.dir/bench_glitch_balance.cpp.o"
  "CMakeFiles/bench_glitch_balance.dir/bench_glitch_balance.cpp.o.d"
  "bench_glitch_balance"
  "bench_glitch_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_glitch_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
