# Empty dependencies file for bench_glitch_balance.
# This may be replaced when dependencies are built.
