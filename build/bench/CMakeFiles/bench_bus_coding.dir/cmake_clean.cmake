file(REMOVE_RECURSE
  "CMakeFiles/bench_bus_coding.dir/bench_bus_coding.cpp.o"
  "CMakeFiles/bench_bus_coding.dir/bench_bus_coding.cpp.o.d"
  "bench_bus_coding"
  "bench_bus_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bus_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
