# Empty dependencies file for bench_bus_coding.
# This may be replaced when dependencies are built.
