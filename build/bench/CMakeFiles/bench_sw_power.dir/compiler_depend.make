# Empty compiler generated dependencies file for bench_sw_power.
# This may be replaced when dependencies are built.
