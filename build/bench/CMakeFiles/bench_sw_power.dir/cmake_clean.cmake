file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_power.dir/bench_sw_power.cpp.o"
  "CMakeFiles/bench_sw_power.dir/bench_sw_power.cpp.o.d"
  "bench_sw_power"
  "bench_sw_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
