file(REMOVE_RECURSE
  "CMakeFiles/bench_voltage_scaling.dir/bench_voltage_scaling.cpp.o"
  "CMakeFiles/bench_voltage_scaling.dir/bench_voltage_scaling.cpp.o.d"
  "bench_voltage_scaling"
  "bench_voltage_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voltage_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
