# Empty compiler generated dependencies file for bench_voltage_scaling.
# This may be replaced when dependencies are built.
