file(REMOVE_RECURSE
  "CMakeFiles/bench_arch_models.dir/bench_arch_models.cpp.o"
  "CMakeFiles/bench_arch_models.dir/bench_arch_models.cpp.o.d"
  "bench_arch_models"
  "bench_arch_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arch_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
