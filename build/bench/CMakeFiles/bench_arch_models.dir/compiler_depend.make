# Empty compiler generated dependencies file for bench_arch_models.
# This may be replaced when dependencies are built.
