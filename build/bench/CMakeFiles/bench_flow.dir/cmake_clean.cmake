file(REMOVE_RECURSE
  "CMakeFiles/bench_flow.dir/bench_flow.cpp.o"
  "CMakeFiles/bench_flow.dir/bench_flow.cpp.o.d"
  "bench_flow"
  "bench_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
