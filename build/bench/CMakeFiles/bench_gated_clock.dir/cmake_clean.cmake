file(REMOVE_RECURSE
  "CMakeFiles/bench_gated_clock.dir/bench_gated_clock.cpp.o"
  "CMakeFiles/bench_gated_clock.dir/bench_gated_clock.cpp.o.d"
  "bench_gated_clock"
  "bench_gated_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gated_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
