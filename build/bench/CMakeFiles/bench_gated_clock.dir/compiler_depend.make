# Empty compiler generated dependencies file for bench_gated_clock.
# This may be replaced when dependencies are built.
