file(REMOVE_RECURSE
  "CMakeFiles/bench_reordering.dir/bench_reordering.cpp.o"
  "CMakeFiles/bench_reordering.dir/bench_reordering.cpp.o.d"
  "bench_reordering"
  "bench_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
