# Empty compiler generated dependencies file for bench_reordering.
# This may be replaced when dependencies are built.
