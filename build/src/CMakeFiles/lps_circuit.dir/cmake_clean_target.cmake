file(REMOVE_RECURSE
  "liblps_circuit.a"
)
