# Empty compiler generated dependencies file for lps_circuit.
# This may be replaced when dependencies are built.
