file(REMOVE_RECURSE
  "CMakeFiles/lps_circuit.dir/circuit/complex_gate.cpp.o"
  "CMakeFiles/lps_circuit.dir/circuit/complex_gate.cpp.o.d"
  "CMakeFiles/lps_circuit.dir/circuit/reordering.cpp.o"
  "CMakeFiles/lps_circuit.dir/circuit/reordering.cpp.o.d"
  "CMakeFiles/lps_circuit.dir/circuit/sizing.cpp.o"
  "CMakeFiles/lps_circuit.dir/circuit/sizing.cpp.o.d"
  "liblps_circuit.a"
  "liblps_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
