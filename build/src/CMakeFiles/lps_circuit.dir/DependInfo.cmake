
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/complex_gate.cpp" "src/CMakeFiles/lps_circuit.dir/circuit/complex_gate.cpp.o" "gcc" "src/CMakeFiles/lps_circuit.dir/circuit/complex_gate.cpp.o.d"
  "/root/repo/src/circuit/reordering.cpp" "src/CMakeFiles/lps_circuit.dir/circuit/reordering.cpp.o" "gcc" "src/CMakeFiles/lps_circuit.dir/circuit/reordering.cpp.o.d"
  "/root/repo/src/circuit/sizing.cpp" "src/CMakeFiles/lps_circuit.dir/circuit/sizing.cpp.o" "gcc" "src/CMakeFiles/lps_circuit.dir/circuit/sizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
