file(REMOVE_RECURSE
  "CMakeFiles/lps_power.dir/power/activity.cpp.o"
  "CMakeFiles/lps_power.dir/power/activity.cpp.o.d"
  "CMakeFiles/lps_power.dir/power/power_model.cpp.o"
  "CMakeFiles/lps_power.dir/power/power_model.cpp.o.d"
  "CMakeFiles/lps_power.dir/power/probability.cpp.o"
  "CMakeFiles/lps_power.dir/power/probability.cpp.o.d"
  "liblps_power.a"
  "liblps_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
