
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/activity.cpp" "src/CMakeFiles/lps_power.dir/power/activity.cpp.o" "gcc" "src/CMakeFiles/lps_power.dir/power/activity.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/lps_power.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/lps_power.dir/power/power_model.cpp.o.d"
  "/root/repo/src/power/probability.cpp" "src/CMakeFiles/lps_power.dir/power/probability.cpp.o" "gcc" "src/CMakeFiles/lps_power.dir/power/probability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
