# Empty compiler generated dependencies file for lps_power.
# This may be replaced when dependencies are built.
