file(REMOVE_RECURSE
  "liblps_power.a"
)
