# Empty compiler generated dependencies file for lps_sim.
# This may be replaced when dependencies are built.
