
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/eventsim.cpp" "src/CMakeFiles/lps_sim.dir/sim/eventsim.cpp.o" "gcc" "src/CMakeFiles/lps_sim.dir/sim/eventsim.cpp.o.d"
  "/root/repo/src/sim/logicsim.cpp" "src/CMakeFiles/lps_sim.dir/sim/logicsim.cpp.o" "gcc" "src/CMakeFiles/lps_sim.dir/sim/logicsim.cpp.o.d"
  "/root/repo/src/sim/stimulus.cpp" "src/CMakeFiles/lps_sim.dir/sim/stimulus.cpp.o" "gcc" "src/CMakeFiles/lps_sim.dir/sim/stimulus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
