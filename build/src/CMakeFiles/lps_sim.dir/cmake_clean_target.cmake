file(REMOVE_RECURSE
  "liblps_sim.a"
)
