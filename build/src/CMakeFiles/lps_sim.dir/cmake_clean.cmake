file(REMOVE_RECURSE
  "CMakeFiles/lps_sim.dir/sim/eventsim.cpp.o"
  "CMakeFiles/lps_sim.dir/sim/eventsim.cpp.o.d"
  "CMakeFiles/lps_sim.dir/sim/logicsim.cpp.o"
  "CMakeFiles/lps_sim.dir/sim/logicsim.cpp.o.d"
  "CMakeFiles/lps_sim.dir/sim/stimulus.cpp.o"
  "CMakeFiles/lps_sim.dir/sim/stimulus.cpp.o.d"
  "liblps_sim.a"
  "liblps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
