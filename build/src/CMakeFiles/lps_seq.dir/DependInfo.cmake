
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/clock_gating.cpp" "src/CMakeFiles/lps_seq.dir/seq/clock_gating.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/clock_gating.cpp.o.d"
  "/root/repo/src/seq/encoding.cpp" "src/CMakeFiles/lps_seq.dir/seq/encoding.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/encoding.cpp.o.d"
  "/root/repo/src/seq/guarded_eval.cpp" "src/CMakeFiles/lps_seq.dir/seq/guarded_eval.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/guarded_eval.cpp.o.d"
  "/root/repo/src/seq/precompute.cpp" "src/CMakeFiles/lps_seq.dir/seq/precompute.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/precompute.cpp.o.d"
  "/root/repo/src/seq/retiming.cpp" "src/CMakeFiles/lps_seq.dir/seq/retiming.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/retiming.cpp.o.d"
  "/root/repo/src/seq/seq_circuit.cpp" "src/CMakeFiles/lps_seq.dir/seq/seq_circuit.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/seq_circuit.cpp.o.d"
  "/root/repo/src/seq/stg.cpp" "src/CMakeFiles/lps_seq.dir/seq/stg.cpp.o" "gcc" "src/CMakeFiles/lps_seq.dir/seq/stg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
