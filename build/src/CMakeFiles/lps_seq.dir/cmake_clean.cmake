file(REMOVE_RECURSE
  "CMakeFiles/lps_seq.dir/seq/clock_gating.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/clock_gating.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/encoding.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/encoding.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/guarded_eval.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/guarded_eval.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/precompute.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/precompute.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/retiming.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/retiming.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/seq_circuit.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/seq_circuit.cpp.o.d"
  "CMakeFiles/lps_seq.dir/seq/stg.cpp.o"
  "CMakeFiles/lps_seq.dir/seq/stg.cpp.o.d"
  "liblps_seq.a"
  "liblps_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
