# Empty compiler generated dependencies file for lps_seq.
# This may be replaced when dependencies are built.
