file(REMOVE_RECURSE
  "liblps_seq.a"
)
