file(REMOVE_RECURSE
  "liblps_core.a"
)
