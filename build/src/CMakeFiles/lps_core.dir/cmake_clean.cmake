file(REMOVE_RECURSE
  "CMakeFiles/lps_core.dir/core/flows.cpp.o"
  "CMakeFiles/lps_core.dir/core/flows.cpp.o.d"
  "CMakeFiles/lps_core.dir/core/pass.cpp.o"
  "CMakeFiles/lps_core.dir/core/pass.cpp.o.d"
  "CMakeFiles/lps_core.dir/core/report.cpp.o"
  "CMakeFiles/lps_core.dir/core/report.cpp.o.d"
  "liblps_core.a"
  "liblps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
