# Empty compiler generated dependencies file for lps_core.
# This may be replaced when dependencies are built.
