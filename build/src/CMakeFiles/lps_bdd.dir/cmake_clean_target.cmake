file(REMOVE_RECURSE
  "liblps_bdd.a"
)
