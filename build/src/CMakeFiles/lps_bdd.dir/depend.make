# Empty dependencies file for lps_bdd.
# This may be replaced when dependencies are built.
