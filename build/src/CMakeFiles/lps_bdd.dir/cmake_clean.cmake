file(REMOVE_RECURSE
  "CMakeFiles/lps_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/lps_bdd.dir/bdd/bdd.cpp.o.d"
  "CMakeFiles/lps_bdd.dir/bdd/bdd_netlist.cpp.o"
  "CMakeFiles/lps_bdd.dir/bdd/bdd_netlist.cpp.o.d"
  "liblps_bdd.a"
  "liblps_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
