file(REMOVE_RECURSE
  "liblps_logicopt.a"
)
