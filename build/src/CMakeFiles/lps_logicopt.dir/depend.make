# Empty dependencies file for lps_logicopt.
# This may be replaced when dependencies are built.
