file(REMOVE_RECURSE
  "CMakeFiles/lps_logicopt.dir/logicopt/decompose_power.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/decompose_power.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/dontcare.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/dontcare.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/library.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/library.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/path_balance.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/path_balance.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/power_factor.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/power_factor.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/resynth.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/resynth.cpp.o.d"
  "CMakeFiles/lps_logicopt.dir/logicopt/techmap.cpp.o"
  "CMakeFiles/lps_logicopt.dir/logicopt/techmap.cpp.o.d"
  "liblps_logicopt.a"
  "liblps_logicopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_logicopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
