
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logicopt/decompose_power.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/decompose_power.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/decompose_power.cpp.o.d"
  "/root/repo/src/logicopt/dontcare.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/dontcare.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/dontcare.cpp.o.d"
  "/root/repo/src/logicopt/library.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/library.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/library.cpp.o.d"
  "/root/repo/src/logicopt/path_balance.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/path_balance.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/path_balance.cpp.o.d"
  "/root/repo/src/logicopt/power_factor.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/power_factor.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/power_factor.cpp.o.d"
  "/root/repo/src/logicopt/resynth.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/resynth.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/resynth.cpp.o.d"
  "/root/repo/src/logicopt/techmap.cpp" "src/CMakeFiles/lps_logicopt.dir/logicopt/techmap.cpp.o" "gcc" "src/CMakeFiles/lps_logicopt.dir/logicopt/techmap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
