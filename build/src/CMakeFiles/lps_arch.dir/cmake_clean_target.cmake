file(REMOVE_RECURSE
  "liblps_arch.a"
)
