file(REMOVE_RECURSE
  "CMakeFiles/lps_arch.dir/arch/binding.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/binding.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/dfg.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/dfg.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/macromodel.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/macromodel.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/memory.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/memory.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/modules.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/modules.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/scheduling.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/scheduling.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/transforms.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/transforms.cpp.o.d"
  "CMakeFiles/lps_arch.dir/arch/voltage.cpp.o"
  "CMakeFiles/lps_arch.dir/arch/voltage.cpp.o.d"
  "liblps_arch.a"
  "liblps_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
