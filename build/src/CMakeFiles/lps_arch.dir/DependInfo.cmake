
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/binding.cpp" "src/CMakeFiles/lps_arch.dir/arch/binding.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/binding.cpp.o.d"
  "/root/repo/src/arch/dfg.cpp" "src/CMakeFiles/lps_arch.dir/arch/dfg.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/dfg.cpp.o.d"
  "/root/repo/src/arch/macromodel.cpp" "src/CMakeFiles/lps_arch.dir/arch/macromodel.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/macromodel.cpp.o.d"
  "/root/repo/src/arch/memory.cpp" "src/CMakeFiles/lps_arch.dir/arch/memory.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/memory.cpp.o.d"
  "/root/repo/src/arch/modules.cpp" "src/CMakeFiles/lps_arch.dir/arch/modules.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/modules.cpp.o.d"
  "/root/repo/src/arch/scheduling.cpp" "src/CMakeFiles/lps_arch.dir/arch/scheduling.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/scheduling.cpp.o.d"
  "/root/repo/src/arch/transforms.cpp" "src/CMakeFiles/lps_arch.dir/arch/transforms.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/transforms.cpp.o.d"
  "/root/repo/src/arch/voltage.cpp" "src/CMakeFiles/lps_arch.dir/arch/voltage.cpp.o" "gcc" "src/CMakeFiles/lps_arch.dir/arch/voltage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
