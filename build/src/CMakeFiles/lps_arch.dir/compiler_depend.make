# Empty compiler generated dependencies file for lps_arch.
# This may be replaced when dependencies are built.
