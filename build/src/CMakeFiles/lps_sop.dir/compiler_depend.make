# Empty compiler generated dependencies file for lps_sop.
# This may be replaced when dependencies are built.
