
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sop/cube.cpp" "src/CMakeFiles/lps_sop.dir/sop/cube.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/cube.cpp.o.d"
  "/root/repo/src/sop/division.cpp" "src/CMakeFiles/lps_sop.dir/sop/division.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/division.cpp.o.d"
  "/root/repo/src/sop/factoring.cpp" "src/CMakeFiles/lps_sop.dir/sop/factoring.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/factoring.cpp.o.d"
  "/root/repo/src/sop/kernels.cpp" "src/CMakeFiles/lps_sop.dir/sop/kernels.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/kernels.cpp.o.d"
  "/root/repo/src/sop/minimize.cpp" "src/CMakeFiles/lps_sop.dir/sop/minimize.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/minimize.cpp.o.d"
  "/root/repo/src/sop/sop.cpp" "src/CMakeFiles/lps_sop.dir/sop/sop.cpp.o" "gcc" "src/CMakeFiles/lps_sop.dir/sop/sop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
