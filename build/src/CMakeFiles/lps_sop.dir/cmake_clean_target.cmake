file(REMOVE_RECURSE
  "liblps_sop.a"
)
