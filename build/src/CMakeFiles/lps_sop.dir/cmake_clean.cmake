file(REMOVE_RECURSE
  "CMakeFiles/lps_sop.dir/sop/cube.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/cube.cpp.o.d"
  "CMakeFiles/lps_sop.dir/sop/division.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/division.cpp.o.d"
  "CMakeFiles/lps_sop.dir/sop/factoring.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/factoring.cpp.o.d"
  "CMakeFiles/lps_sop.dir/sop/kernels.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/kernels.cpp.o.d"
  "CMakeFiles/lps_sop.dir/sop/minimize.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/minimize.cpp.o.d"
  "CMakeFiles/lps_sop.dir/sop/sop.cpp.o"
  "CMakeFiles/lps_sop.dir/sop/sop.cpp.o.d"
  "liblps_sop.a"
  "liblps_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
