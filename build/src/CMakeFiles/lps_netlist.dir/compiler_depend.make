# Empty compiler generated dependencies file for lps_netlist.
# This may be replaced when dependencies are built.
