file(REMOVE_RECURSE
  "liblps_netlist.a"
)
