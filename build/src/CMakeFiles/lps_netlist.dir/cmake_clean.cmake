file(REMOVE_RECURSE
  "CMakeFiles/lps_netlist.dir/netlist/benchmarks.cpp.o"
  "CMakeFiles/lps_netlist.dir/netlist/benchmarks.cpp.o.d"
  "CMakeFiles/lps_netlist.dir/netlist/blif.cpp.o"
  "CMakeFiles/lps_netlist.dir/netlist/blif.cpp.o.d"
  "CMakeFiles/lps_netlist.dir/netlist/netlist.cpp.o"
  "CMakeFiles/lps_netlist.dir/netlist/netlist.cpp.o.d"
  "liblps_netlist.a"
  "liblps_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
