file(REMOVE_RECURSE
  "liblps_coding.a"
)
