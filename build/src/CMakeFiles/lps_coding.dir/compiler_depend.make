# Empty compiler generated dependencies file for lps_coding.
# This may be replaced when dependencies are built.
