
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coding/bus_invert.cpp" "src/CMakeFiles/lps_coding.dir/coding/bus_invert.cpp.o" "gcc" "src/CMakeFiles/lps_coding.dir/coding/bus_invert.cpp.o.d"
  "/root/repo/src/coding/gray.cpp" "src/CMakeFiles/lps_coding.dir/coding/gray.cpp.o" "gcc" "src/CMakeFiles/lps_coding.dir/coding/gray.cpp.o.d"
  "/root/repo/src/coding/limited_weight.cpp" "src/CMakeFiles/lps_coding.dir/coding/limited_weight.cpp.o" "gcc" "src/CMakeFiles/lps_coding.dir/coding/limited_weight.cpp.o.d"
  "/root/repo/src/coding/residue.cpp" "src/CMakeFiles/lps_coding.dir/coding/residue.cpp.o" "gcc" "src/CMakeFiles/lps_coding.dir/coding/residue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lps_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
