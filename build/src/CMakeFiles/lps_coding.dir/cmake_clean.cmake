file(REMOVE_RECURSE
  "CMakeFiles/lps_coding.dir/coding/bus_invert.cpp.o"
  "CMakeFiles/lps_coding.dir/coding/bus_invert.cpp.o.d"
  "CMakeFiles/lps_coding.dir/coding/gray.cpp.o"
  "CMakeFiles/lps_coding.dir/coding/gray.cpp.o.d"
  "CMakeFiles/lps_coding.dir/coding/limited_weight.cpp.o"
  "CMakeFiles/lps_coding.dir/coding/limited_weight.cpp.o.d"
  "CMakeFiles/lps_coding.dir/coding/residue.cpp.o"
  "CMakeFiles/lps_coding.dir/coding/residue.cpp.o.d"
  "liblps_coding.a"
  "liblps_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
