
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/isa.cpp" "src/CMakeFiles/lps_sw.dir/sw/isa.cpp.o" "gcc" "src/CMakeFiles/lps_sw.dir/sw/isa.cpp.o.d"
  "/root/repo/src/sw/pairing.cpp" "src/CMakeFiles/lps_sw.dir/sw/pairing.cpp.o" "gcc" "src/CMakeFiles/lps_sw.dir/sw/pairing.cpp.o.d"
  "/root/repo/src/sw/power_model.cpp" "src/CMakeFiles/lps_sw.dir/sw/power_model.cpp.o" "gcc" "src/CMakeFiles/lps_sw.dir/sw/power_model.cpp.o.d"
  "/root/repo/src/sw/regalloc.cpp" "src/CMakeFiles/lps_sw.dir/sw/regalloc.cpp.o" "gcc" "src/CMakeFiles/lps_sw.dir/sw/regalloc.cpp.o.d"
  "/root/repo/src/sw/scheduling.cpp" "src/CMakeFiles/lps_sw.dir/sw/scheduling.cpp.o" "gcc" "src/CMakeFiles/lps_sw.dir/sw/scheduling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
