# Empty dependencies file for lps_sw.
# This may be replaced when dependencies are built.
