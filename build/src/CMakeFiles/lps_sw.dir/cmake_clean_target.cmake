file(REMOVE_RECURSE
  "liblps_sw.a"
)
