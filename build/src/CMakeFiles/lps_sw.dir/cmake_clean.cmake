file(REMOVE_RECURSE
  "CMakeFiles/lps_sw.dir/sw/isa.cpp.o"
  "CMakeFiles/lps_sw.dir/sw/isa.cpp.o.d"
  "CMakeFiles/lps_sw.dir/sw/pairing.cpp.o"
  "CMakeFiles/lps_sw.dir/sw/pairing.cpp.o.d"
  "CMakeFiles/lps_sw.dir/sw/power_model.cpp.o"
  "CMakeFiles/lps_sw.dir/sw/power_model.cpp.o.d"
  "CMakeFiles/lps_sw.dir/sw/regalloc.cpp.o"
  "CMakeFiles/lps_sw.dir/sw/regalloc.cpp.o.d"
  "CMakeFiles/lps_sw.dir/sw/scheduling.cpp.o"
  "CMakeFiles/lps_sw.dir/sw/scheduling.cpp.o.d"
  "liblps_sw.a"
  "liblps_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lps_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
