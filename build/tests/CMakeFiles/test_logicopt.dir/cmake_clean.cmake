file(REMOVE_RECURSE
  "CMakeFiles/test_logicopt.dir/test_logicopt.cpp.o"
  "CMakeFiles/test_logicopt.dir/test_logicopt.cpp.o.d"
  "test_logicopt"
  "test_logicopt.pdb"
  "test_logicopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logicopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
