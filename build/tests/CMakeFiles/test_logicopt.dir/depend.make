# Empty dependencies file for test_logicopt.
# This may be replaced when dependencies are built.
