# Empty dependencies file for test_sw.
# This may be replaced when dependencies are built.
