# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_blif[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_sop[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_logicopt[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_sw[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
