# Empty dependencies file for comparator_precompute.
# This may be replaced when dependencies are built.
