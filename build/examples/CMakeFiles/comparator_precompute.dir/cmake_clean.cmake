file(REMOVE_RECURSE
  "CMakeFiles/comparator_precompute.dir/comparator_precompute.cpp.o"
  "CMakeFiles/comparator_precompute.dir/comparator_precompute.cpp.o.d"
  "comparator_precompute"
  "comparator_precompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparator_precompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
