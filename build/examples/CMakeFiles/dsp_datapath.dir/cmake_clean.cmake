file(REMOVE_RECURSE
  "CMakeFiles/dsp_datapath.dir/dsp_datapath.cpp.o"
  "CMakeFiles/dsp_datapath.dir/dsp_datapath.cpp.o.d"
  "dsp_datapath"
  "dsp_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
