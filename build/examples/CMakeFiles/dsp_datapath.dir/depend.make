# Empty dependencies file for dsp_datapath.
# This may be replaced when dependencies are built.
