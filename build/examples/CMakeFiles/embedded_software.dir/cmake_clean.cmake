file(REMOVE_RECURSE
  "CMakeFiles/embedded_software.dir/embedded_software.cpp.o"
  "CMakeFiles/embedded_software.dir/embedded_software.cpp.o.d"
  "embedded_software"
  "embedded_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
