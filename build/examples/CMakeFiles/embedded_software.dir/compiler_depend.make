# Empty compiler generated dependencies file for embedded_software.
# This may be replaced when dependencies are built.
