file(REMOVE_RECURSE
  "CMakeFiles/fsm_lowpower.dir/fsm_lowpower.cpp.o"
  "CMakeFiles/fsm_lowpower.dir/fsm_lowpower.cpp.o.d"
  "fsm_lowpower"
  "fsm_lowpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_lowpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
