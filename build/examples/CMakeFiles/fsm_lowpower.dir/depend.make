# Empty dependencies file for fsm_lowpower.
# This may be replaced when dependencies are built.
